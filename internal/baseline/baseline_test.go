package baseline

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"affinity/internal/interval"
	"affinity/internal/stats"
	"affinity/internal/timeseries"
)

func testData(t testing.TB, seed int64, n, m int) *timeseries.DataMatrix {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	series := make([][]float64, n)
	base := make([]float64, m)
	for i := range base {
		base[i] = math.Sin(float64(i) * 0.05)
	}
	for s := range series {
		col := make([]float64, m)
		scale := 0.5 + rng.Float64()*2
		for i := range col {
			col[i] = scale*base[i] + rng.NormFloat64()*0.3
		}
		series[s] = col
	}
	d, err := timeseries.NewDataMatrix(series)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestNaiveLocationAndPairwise(t *testing.T) {
	d := testData(t, 1, 6, 50)
	naive := NewNaive(d)

	ids := []timeseries.SeriesID{0, 2, 4}
	means, err := naive.Location(stats.Mean, ids)
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range ids {
		s, _ := d.Series(id)
		want, _ := stats.MeanOf(s)
		if math.Abs(means[i]-want) > 1e-12 {
			t.Fatalf("mean[%d] = %v, want %v", i, means[i], want)
		}
	}

	cov, err := naive.Pairwise(stats.Covariance, ids)
	if err != nil {
		t.Fatal(err)
	}
	if len(cov) != 3 || len(cov[0]) != 3 {
		t.Fatalf("pairwise shape %dx%d", len(cov), len(cov[0]))
	}
	s0, _ := d.Series(0)
	s4, _ := d.Series(4)
	want, _ := stats.CovarianceOf(s0, s4)
	if math.Abs(cov[0][2]-want) > 1e-12 {
		t.Fatalf("cov[0][2] = %v, want %v", cov[0][2], want)
	}
	if cov[0][2] != cov[2][0] {
		t.Fatal("pairwise result must be symmetric")
	}

	v, err := naive.PairValue(stats.Correlation, timeseries.Pair{U: 0, V: 1})
	if err != nil {
		t.Fatal(err)
	}
	if v < -1 || v > 1 {
		t.Fatalf("correlation %v out of range", v)
	}

	if _, err := naive.Location(stats.Mean, []timeseries.SeriesID{99}); err == nil {
		t.Fatal("invalid id should error")
	}
	if _, err := naive.Pairwise(stats.Covariance, []timeseries.SeriesID{0, 99}); err == nil {
		t.Fatal("invalid id should error")
	}
}

func TestNaivePairwiseConstantSeriesIsNaN(t *testing.T) {
	d, _ := timeseries.NewDataMatrix([][]float64{{1, 2, 3}, {5, 5, 5}})
	naive := NewNaive(d)
	corr, err := naive.Pairwise(stats.Correlation, d.IDs())
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(corr[0][1]) {
		t.Fatalf("correlation with constant series = %v, want NaN", corr[0][1])
	}
}

func TestNaiveThresholdAndRange(t *testing.T) {
	d := testData(t, 2, 8, 60)
	naive := NewNaive(d)

	above, err := naive.PairInterval(stats.Correlation, interval.GreaterThan(0.5))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range above {
		v, _ := naive.PairValue(stats.Correlation, e)
		if v <= 0.5 {
			t.Fatalf("pair %v has correlation %v <= 0.5", e, v)
		}
	}
	below, err := naive.PairInterval(stats.Correlation, interval.LessThan(0.5))
	if err != nil {
		t.Fatal(err)
	}
	if len(above)+len(below) > d.NumPairs() {
		t.Fatal("above and below overlap")
	}

	ranged, err := naive.PairInterval(stats.Correlation, interval.Between(0.2, 0.8))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ranged {
		v, _ := naive.PairValue(stats.Correlation, e)
		if v < 0.2 || v > 0.8 {
			t.Fatalf("pair %v value %v outside range", e, v)
		}
	}
	if _, err := naive.PairInterval(stats.Correlation, interval.Between(1, 0)); err == nil {
		t.Fatal("inverted range should error")
	}

	seriesAbove, err := naive.SeriesInterval(stats.Mean, interval.GreaterThan(0))
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range seriesAbove {
		s, _ := d.Series(id)
		m, _ := stats.MeanOf(s)
		if m <= 0 {
			t.Fatalf("series %d mean %v <= 0", id, m)
		}
	}
	if _, err := naive.SeriesInterval(stats.Mean, interval.Between(1, 0)); err == nil {
		t.Fatal("inverted series range should error")
	}
	sr, err := naive.SeriesInterval(stats.Mean, interval.Between(-100, 100))
	if err != nil {
		t.Fatal(err)
	}
	if len(sr) != d.NumSeries() {
		t.Fatalf("wide series range returned %d of %d", len(sr), d.NumSeries())
	}
}

func TestDFTNotPrecomputed(t *testing.T) {
	d := testData(t, 3, 4, 40)
	w := NewDFT(d, 5)
	if _, err := w.ApproxCorrelation(timeseries.Pair{U: 0, V: 1}); !errors.Is(err, ErrNotPrecomputed) {
		t.Fatalf("err = %v", err)
	}
	if _, err := w.PairThreshold(0.5, true); !errors.Is(err, ErrNotPrecomputed) {
		t.Fatalf("err = %v", err)
	}
	if _, err := w.PairRange(0, 1); !errors.Is(err, ErrNotPrecomputed) {
		t.Fatalf("err = %v", err)
	}
}

func TestDFTApproximationAccuracy(t *testing.T) {
	// The W_F approximation should track the true correlation for smooth
	// (low-frequency dominated) series like the diurnal sensor signals.
	d := testData(t, 4, 10, 128)
	w := NewDFT(d, 8)
	if err := w.Precompute(); err != nil {
		t.Fatal(err)
	}
	naive := NewNaive(d)
	var maxErr float64
	for _, e := range d.AllPairs() {
		truth, err := naive.PairValue(stats.Correlation, e)
		if err != nil {
			continue
		}
		approx, err := w.ApproxCorrelation(e)
		if err != nil {
			t.Fatal(err)
		}
		if approx < -1 || approx > 1 {
			t.Fatalf("approximation %v out of range", approx)
		}
		if diff := math.Abs(truth - approx); diff > maxErr {
			maxErr = diff
		}
	}
	if maxErr > 0.25 {
		t.Fatalf("max approximation error %.3f too large for smooth series", maxErr)
	}
}

func TestDFTDefaultCoefficientsAndDegenerate(t *testing.T) {
	d, _ := timeseries.NewDataMatrix([][]float64{
		{1, 2, 3, 4, 5, 6, 7, 8},
		{8, 7, 6, 5, 4, 3, 2, 1},
		{3, 3, 3, 3, 3, 3, 3, 3}, // constant
	})
	w := NewDFT(d, 0)
	if w.numCoeffs != DefaultDFTCoefficients {
		t.Fatalf("default coefficients = %d", w.numCoeffs)
	}
	if err := w.Precompute(); err != nil {
		t.Fatal(err)
	}
	// Anti-correlated pair.
	v, err := w.ApproxCorrelation(timeseries.Pair{U: 0, V: 1})
	if err != nil {
		t.Fatal(err)
	}
	if v > -0.8 {
		t.Fatalf("anti-correlated pair approximation = %v, want close to -1", v)
	}
	// Pair with the constant series is degenerate.
	if _, err := w.ApproxCorrelation(timeseries.Pair{U: 0, V: 2}); !errors.Is(err, stats.ErrZeroNormalizer) {
		t.Fatalf("degenerate pair err = %v", err)
	}
	// Invalid pair.
	if _, err := w.ApproxCorrelation(timeseries.Pair{U: 0, V: 99}); err == nil {
		t.Fatal("invalid pair should error")
	}
	// Threshold and range skip degenerate pairs rather than failing.
	res, err := w.PairThreshold(-2, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range res {
		if e.Contains(2) {
			t.Fatalf("degenerate pair %v included", e)
		}
	}
	if _, err := w.PairRange(1, -1); err == nil {
		t.Fatal("inverted range should error")
	}
	ranged, err := w.PairRange(-1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranged) != 1 {
		t.Fatalf("range [-1,1] should contain exactly the one non-degenerate pair, got %d", len(ranged))
	}
}

func TestDFTThresholdConsistentWithApproxValues(t *testing.T) {
	d := testData(t, 5, 8, 90)
	w := NewDFT(d, 6)
	if err := w.Precompute(); err != nil {
		t.Fatal(err)
	}
	tau := 0.6
	res, err := w.PairThreshold(tau, true)
	if err != nil {
		t.Fatal(err)
	}
	inResult := map[timeseries.Pair]bool{}
	for _, e := range res {
		inResult[e] = true
	}
	for _, e := range d.AllPairs() {
		v, err := w.ApproxCorrelation(e)
		if err != nil {
			continue
		}
		if (v > tau) != inResult[e] {
			t.Fatalf("pair %v: approx %v, threshold membership %v", e, v, inResult[e])
		}
	}
}
