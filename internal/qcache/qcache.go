// Package qcache is the epoch-aware semantic result cache behind the unified
// executor (internal/core) and the shard coordinator's global merge layer
// (internal/shard).
//
// The paper's online workload (Fig 12) is dominated by repeated hot probes:
// monitoring clients re-issue the same (measure, interval) and top-k queries
// every tick.  The engine's epoch model makes those results cacheable with a
// precise invalidation story — a result is a pure function of (logical query,
// execution method, epoch) — and the drift-bounded refit machinery (PR 6)
// already computes, on every Advance, exactly which affine relationships an
// epoch transition re-fit.  The cache turns that stale set into three reuse
// tiers:
//
//   - Exact hit: the same canonical query at the current epoch returns the
//     stored result with zero allocations.
//   - Semantic containment: an interval query contained in a cached entry's
//     interval filters the stored rows by their stored values instead of
//     touching the index, and top-k(k′ ≤ k, same direction) serves a prefix
//     of a cached ranking.
//   - Delta repair across Advance: a cached interval result survives an epoch
//     swap by re-evaluating only its own rows plus the epochs' stale pairs,
//     verified complete against the index's exact selectivity count (the
//     caller owns evaluation and verification; the cache owns the candidate
//     bookkeeping — see PlanRepair/CommitRepair).
//
// Entries are evicted deterministically: least-recently-used first under a
// byte budget, and eagerly on Advance once an entry's epoch falls out of the
// repairable window.  All results served from the cache share the stored
// backing arrays and must be treated as read-only snapshots — that sharing is
// what makes the exact-hit path allocation-free.
//
// The package sits below internal/core (which imports it), so results are
// expressed in raw pairs/values rather than core.QueryResult.
package qcache

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"affinity/internal/interval"
	"affinity/internal/plan"
	"affinity/internal/stats"
	"affinity/internal/timeseries"
)

// Tier identifies which reuse tier served a cached result.
type Tier uint8

const (
	// TierNone means the query was answered by a full execution.
	TierNone Tier = iota
	// TierExact is a same-key, same-epoch hit.
	TierExact
	// TierContained is an interval served by filtering a wider cached entry,
	// or a top-k prefix of a deeper cached ranking.
	TierContained
	// TierRepaired is an interval carried across an Advance by delta repair.
	TierRepaired
)

// String renders the tier as it appears in Explain plans ("" for TierNone).
func (t Tier) String() string {
	switch t {
	case TierExact:
		return "exact"
	case TierContained:
		return "contained"
	case TierRepaired:
		return "repaired"
	default:
		return ""
	}
}

// Key is the canonical identity of a cacheable query: measure, logical kind,
// concrete execution method, and the kind's parameters with the interval in
// canonical form.  Keys are comparable, so exact lookups are one map probe.
// The epoch is deliberately not part of the key — it lives on the entry, which
// is what lets one entry migrate forward across Advances via delta repair.
type Key struct {
	Measure  stats.Measure
	Kind     plan.Kind
	Method   plan.Method
	Interval interval.Interval // canonical; zero for top-k
	K        int               // top-k only
	Largest  bool              // top-k only
}

// IntervalKey builds the key of an interval query, canonicalizing the
// predicate so every equal-meaning spelling lands on one entry.
func IntervalKey(m stats.Measure, method plan.Method, iv interval.Interval) Key {
	return Key{Measure: m, Kind: plan.KindInterval, Method: method, Interval: iv.Canonical()}
}

// TopKKey builds the key of a top-k query.
func TopKKey(m stats.Measure, method plan.Method, k int, largest bool) Key {
	return Key{Measure: m, Kind: plan.KindTopK, Method: method, K: k, Largest: largest}
}

// valid rejects keys that cannot behave as map keys: NaN interval endpoints
// never compare equal to themselves, so such a key could be inserted but never
// found again, leaking one entry per Put.
func (k Key) valid() bool {
	if k.Kind == plan.KindTopK {
		return k.K > 0
	}
	return !math.IsNaN(k.Interval.Lo.Value) && !math.IsNaN(k.Interval.Hi.Value)
}

// Result is the cached answer: pairs in the method's canonical result order,
// and the measure value of each pair.  Values backs containment filtering and
// repair seeding for interval entries and is the ranking for top-k entries;
// callers serving an interval query drop it (interval QueryResults carry nil
// Values by contract).  Both slices are shared with the cache — read-only.
type Result struct {
	Pairs  []timeseries.Pair
	Values []float64
}

// Options configures a cache.  The zero value is a disabled cache, which keeps
// every existing construction path byte-for-byte unchanged.
type Options struct {
	// Enabled turns the cache on.
	Enabled bool
	// MaxBytes is the eviction budget over all entries' estimated footprint
	// (default 32 MiB).
	MaxBytes int64
	// EpochHistory is how many trailing Advances' stale sets are retained for
	// delta repair; entries older than the window are expired (default 8).
	EpochHistory int
}

const (
	defaultMaxBytes     = 32 << 20
	defaultEpochHistory = 8
	// entryOverhead approximates the fixed per-entry footprint (struct, map
	// slot, list links) charged against MaxBytes on top of the slices.
	entryOverhead = 128
)

func (o Options) withDefaults() Options {
	if o.MaxBytes <= 0 {
		o.MaxBytes = defaultMaxBytes
	}
	if o.EpochHistory <= 0 {
		o.EpochHistory = defaultEpochHistory
	}
	return o
}

// Stats are the cache's aggregate counters.  Hit/miss/repair totals are
// cumulative; Entries/Bytes describe the current contents.
type Stats struct {
	ExactHits       int
	ContainmentHits int
	RepairHits      int
	Misses          int
	// RepairedPairs counts candidate pairs re-evaluated by delta repairs.
	RepairedPairs int
	// RepairFallbacks counts repairs abandoned because the repaired row count
	// disagreed with the index's exact selectivity (the query then re-ran cold).
	RepairFallbacks int
	// Evictions counts LRU evictions under the byte budget; Expired counts
	// entries dropped on Advance once they left the repairable epoch window.
	Evictions int
	Expired   int
	Entries   int
	Bytes     int64
}

// Hits is the total across all three tiers.
func (s Stats) Hits() int { return s.ExactHits + s.ContainmentHits + s.RepairHits }

type entry struct {
	key    Key
	epoch  int
	pairs  []timeseries.Pair
	values []float64
	bytes  int64
	hits   int
	// Intrusive LRU list: prev is toward the most recently used end.
	prev, next *entry
}

// epochStale is one Advance's refit record: the stale pairs in canonical
// (U, V) order, or full=true when every relationship was refit (drift bound
// exceeded or disabled), which makes results from older epochs unrepairable.
type epochStale struct {
	epoch int
	full  bool
	stale []timeseries.Pair
}

// Cache is an epoch-aware semantic result cache.  All methods are safe for
// concurrent use and safe on a nil *Cache (every operation is a no-op miss),
// so call sites need no enabled-checks.
type Cache struct {
	mu    sync.Mutex
	opts  Options
	items map[Key]*entry
	// LRU list: head is most recently used, tail least.
	head, tail *entry
	epoch      int
	ring       []epochStale
	stats      Stats
}

// New returns a cache configured by opts, or nil when opts.Enabled is false.
func New(opts Options) *Cache {
	if !opts.Enabled {
		return nil
	}
	return &Cache{opts: opts.withDefaults(), items: make(map[Key]*entry)}
}

// Lookup serves key at the given epoch from the exact or containment tier.
// The zero-allocation exact path is the first probe; containment scans peer
// entries of the same measure/method.  ok is false on a miss; the caller may
// then attempt PlanRepair, and records a final cold execution with Miss/Put.
func (c *Cache) Lookup(key Key, epoch int) (Result, Tier, bool) {
	if c == nil || !key.valid() {
		return Result{}, TierNone, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if epoch != c.epoch {
		// A query pinned to an older epoch (a stale View) can never hit: every
		// entry is kept at, or repaired to, the cache's current epoch.
		return Result{}, TierNone, false
	}
	if e, ok := c.items[key]; ok && e.epoch == epoch {
		c.touch(e)
		e.hits++
		c.stats.ExactHits++
		return Result{Pairs: e.pairs, Values: e.values}, TierExact, true
	}
	switch key.Kind {
	case plan.KindTopK:
		return c.lookupPrefix(key, epoch)
	case plan.KindInterval:
		return c.lookupContained(key, epoch)
	}
	return Result{}, TierNone, false
}

// lookupPrefix serves top-k(k′) from a cached deeper ranking of the same
// (measure, method, direction) at the same epoch.  The engine's top-k order is
// a total order on (value, pair), so the first k′ of a k ≥ k′ ranking are
// exactly the cold k′ result.  Among several candidates the shallowest is
// chosen — a deterministic rule, so the LRU touch sequence (and therefore the
// eviction order) does not depend on map iteration order.
func (c *Cache) lookupPrefix(key Key, epoch int) (Result, Tier, bool) {
	var best *entry
	for _, e := range c.items {
		if e.epoch != epoch || e.key.Kind != plan.KindTopK ||
			e.key.Measure != key.Measure || e.key.Method != key.Method ||
			e.key.Largest != key.Largest || e.key.K < key.K {
			continue
		}
		if best == nil || e.key.K < best.key.K {
			best = e
		}
	}
	if best == nil {
		return Result{}, TierNone, false
	}
	c.touch(best)
	best.hits++
	c.stats.ContainmentHits++
	n := len(best.pairs)
	if key.K < n {
		n = key.K
	}
	return Result{Pairs: best.pairs[:n:n], Values: best.values[:n:n]}, TierContained, true
}

// lookupContained serves an interval query by filtering a cached entry whose
// interval contains the query's.  Membership is decided by the stored values —
// the same values the execution methods decide membership by — and filtering
// preserves the entry's canonical result order, of which the narrower result
// is a subsequence; both together make the filtered rows byte-identical to a
// cold run.  The candidate with the fewest stored rows is chosen (cheapest
// filter, deterministic tie-break on the canonical key order).
func (c *Cache) lookupContained(key Key, epoch int) (Result, Tier, bool) {
	var best *entry
	for _, e := range c.items {
		if e.epoch != epoch || e.key.Kind != plan.KindInterval ||
			e.key.Measure != key.Measure || e.key.Method != key.Method ||
			len(e.values) != len(e.pairs) {
			continue
		}
		if !covers(e.key.Interval, key.Interval) {
			continue
		}
		if best == nil || len(e.pairs) < len(best.pairs) ||
			(len(e.pairs) == len(best.pairs) && keyLess(e.key, best.key)) {
			best = e
		}
	}
	if best == nil {
		return Result{}, TierNone, false
	}
	c.touch(best)
	best.hits++
	c.stats.ContainmentHits++
	n := 0
	for _, v := range best.values {
		if key.Interval.Contains(v) {
			n++
		}
	}
	pairs := make([]timeseries.Pair, 0, n)
	values := make([]float64, 0, n)
	for i, v := range best.values {
		if key.Interval.Contains(v) {
			pairs = append(pairs, best.pairs[i])
			values = append(values, v)
		}
	}
	return Result{Pairs: pairs, Values: values}, TierContained, true
}

// covers reports whether every value satisfying inner satisfies outer.
func covers(outer, inner interval.Interval) bool {
	if !outer.Lo.Unbounded {
		if inner.Lo.Unbounded {
			return false
		}
		switch {
		case inner.Lo.Value > outer.Lo.Value:
		case inner.Lo.Value == outer.Lo.Value && (!outer.Lo.Open || inner.Lo.Open):
		default:
			return false
		}
	}
	if !outer.Hi.Unbounded {
		if inner.Hi.Unbounded {
			return false
		}
		switch {
		case inner.Hi.Value < outer.Hi.Value:
		case inner.Hi.Value == outer.Hi.Value && (!outer.Hi.Open || inner.Hi.Open):
		default:
			return false
		}
	}
	return true
}

// keyLess is an arbitrary but deterministic total order on keys, used only to
// break ties when choosing between equivalent containment candidates.
func keyLess(a, b Key) bool {
	if a.Measure != b.Measure {
		return a.Measure < b.Measure
	}
	al, bl := a.Interval.Lo.Limit(-1), b.Interval.Lo.Limit(-1)
	if al != bl {
		return al > bl // tighter lower bound first
	}
	ah, bh := a.Interval.Hi.Limit(1), b.Interval.Hi.Limit(1)
	if ah != bh {
		return ah < bh
	}
	if a.Interval.Lo.Open != b.Interval.Lo.Open {
		return a.Interval.Lo.Open
	}
	return a.Interval.Hi.Open && !b.Interval.Hi.Open
}

// RepairPlan is the candidate bookkeeping for one delta repair: the pairs
// whose membership could have changed since the entry's epoch.  The caller
// re-evaluates exactly these pairs at the current epoch; every other pair's
// absence from the result is guaranteed by the completeness verification in
// the caller (repaired row count == the index's exact selectivity).
type RepairPlan struct {
	// Candidates is the union of the entry's rows and the stale sets of every
	// Advance since the entry's epoch, in canonical (U, V) order.
	Candidates []timeseries.Pair
	// StalePairs is how many candidates came from the stale sets (the delta's
	// size, reported through Explain and the experiment tables).
	StalePairs int
}

// PlanRepair reports whether the entry under key can be delta-repaired up to
// epoch, and if so returns its candidate set.  It does not mutate the cache;
// the caller decides repair-vs-rescan with the cost model, performs the
// re-evaluation, and installs the outcome with CommitRepair (or falls back to
// a cold run and Put).
func (c *Cache) PlanRepair(key Key, epoch int) (RepairPlan, bool) {
	if c == nil || !key.valid() || key.Kind != plan.KindInterval {
		return RepairPlan{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if epoch != c.epoch {
		return RepairPlan{}, false
	}
	e, ok := c.items[key]
	if !ok || e.epoch >= epoch || len(e.values) != len(e.pairs) {
		return RepairPlan{}, false
	}
	staleSets, ok := c.staleSince(e.epoch, epoch)
	if !ok {
		return RepairPlan{}, false
	}
	stale := 0
	for _, s := range staleSets {
		stale += len(s)
	}
	candidates := make([]timeseries.Pair, 0, len(e.pairs)+stale)
	candidates = append(candidates, e.pairs...)
	for _, s := range staleSets {
		candidates = append(candidates, s...)
	}
	sort.Slice(candidates, func(i, j int) bool {
		a, b := candidates[i], candidates[j]
		return a.U < b.U || (a.U == b.U && a.V < b.V)
	})
	dedup := candidates[:0]
	for i, p := range candidates {
		if i == 0 || p != candidates[i-1] {
			dedup = append(dedup, p)
		}
	}
	return RepairPlan{Candidates: dedup, StalePairs: stale}, true
}

// staleSince returns the stale sets of every Advance in (from, to], or
// ok=false when the window is not fully covered by the ring or contains a
// full refit (whose stale set is "everything" — no delta to repair from).
func (c *Cache) staleSince(from, to int) ([][]timeseries.Pair, bool) {
	out := make([][]timeseries.Pair, 0, to-from)
	for ep := from + 1; ep <= to; ep++ {
		found := false
		for i := range c.ring {
			if c.ring[i].epoch == ep {
				if c.ring[i].full {
					return nil, false
				}
				out = append(out, c.ring[i].stale)
				found = true
				break
			}
		}
		if !found {
			return nil, false
		}
	}
	return out, true
}

// CommitRepair installs a verified repair outcome: the entry migrates to the
// new epoch with the repaired rows, counting toward the repair tier.
// candidates is the number of pairs the caller re-evaluated.
func (c *Cache) CommitRepair(key Key, epoch int, pairs []timeseries.Pair, values []float64, candidates int) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.items[key]
	if !ok || epoch != c.epoch {
		return
	}
	c.stats.Bytes -= e.bytes
	e.epoch = epoch
	e.pairs = pairs
	e.values = values
	e.bytes = entryBytes(pairs, values)
	e.hits++
	c.stats.Bytes += e.bytes
	c.stats.RepairHits++
	c.stats.RepairedPairs += candidates
	c.touch(e)
	c.evict()
}

// NoteRepairFallback records a repair abandoned at verification time (row
// count disagreed with the exact selectivity); the query re-ran cold.
func (c *Cache) NoteRepairFallback() {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.stats.RepairFallbacks++
	c.mu.Unlock()
}

// Miss records that a cacheable query found no reuse tier and executed cold.
func (c *Cache) Miss() {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.stats.Misses++
	c.mu.Unlock()
}

// Put stores a cold execution's result.  Results from stale epoch pins
// (queries against a View older than the cache's current epoch) are not
// stored — they would clobber newer entries.  The slices are retained by the
// cache; callers must not mutate them after.
func (c *Cache) Put(key Key, epoch int, pairs []timeseries.Pair, values []float64) {
	if c == nil || !key.valid() {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if epoch != c.epoch {
		return
	}
	b := entryBytes(pairs, values)
	if b > c.opts.MaxBytes {
		return
	}
	if e, ok := c.items[key]; ok {
		c.stats.Bytes -= e.bytes
		e.epoch = epoch
		e.pairs = pairs
		e.values = values
		e.bytes = b
		c.stats.Bytes += b
		c.touch(e)
		c.evict()
		return
	}
	e := &entry{key: key, epoch: epoch, pairs: pairs, values: values, bytes: b}
	c.items[key] = e
	c.stats.Entries++
	c.stats.Bytes += b
	c.pushFront(e)
	c.evict()
}

func entryBytes(pairs []timeseries.Pair, values []float64) int64 {
	return entryOverhead + 16*int64(len(pairs)) + 8*int64(len(values))
}

// OnAdvance moves the cache to a new epoch, recording the Advance's stale
// pairs (sorted canonical order; ownership transfers to the cache) or
// full=true when every relationship was refit.  Entries whose epoch has
// fallen out of the repairable window are expired eagerly — they can never
// hit again.
func (c *Cache) OnAdvance(epoch int, stale []timeseries.Pair, full bool) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.epoch = epoch
	c.ring = append(c.ring, epochStale{epoch: epoch, full: full, stale: stale})
	if n := len(c.ring) - c.opts.EpochHistory; n > 0 {
		c.ring = append(c.ring[:0], c.ring[n:]...)
	}
	for key, e := range c.items {
		if e.epoch == epoch {
			continue
		}
		if _, ok := c.staleSince(e.epoch, epoch); !ok {
			c.remove(e)
			delete(c.items, key)
			c.stats.Expired++
		}
	}
}

// Stats returns a snapshot of the aggregate counters.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// EntryStat describes one live entry, for diagnostics and tests.
type EntryStat struct {
	Key   Key
	Epoch int
	Rows  int
	Bytes int64
	Hits  int
}

// EntryStats lists the live entries from most to least recently used.
func (c *Cache) EntryStats() []EntryStat {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]EntryStat, 0, len(c.items))
	for e := c.head; e != nil; e = e.next {
		out = append(out, EntryStat{Key: e.key, Epoch: e.epoch, Rows: len(e.pairs), Bytes: e.bytes, Hits: e.hits})
	}
	return out
}

// String summarizes the cache for logs.
func (c *Cache) String() string {
	s := c.Stats()
	return fmt.Sprintf("qcache{entries=%d bytes=%d exact=%d contained=%d repaired=%d misses=%d}",
		s.Entries, s.Bytes, s.ExactHits, s.ContainmentHits, s.RepairHits, s.Misses)
}

// ---- intrusive LRU list (mu held) ----

func (c *Cache) pushFront(e *entry) {
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *Cache) remove(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
	c.stats.Entries--
	c.stats.Bytes -= e.bytes
}

func (c *Cache) touch(e *entry) {
	if c.head == e {
		return
	}
	// Unlink (without the accounting remove does), then push to front.
	if e.prev != nil {
		e.prev.next = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
	c.pushFront(e)
}

func (c *Cache) evict() {
	for c.stats.Bytes > c.opts.MaxBytes && c.tail != nil {
		victim := c.tail
		c.remove(victim)
		delete(c.items, victim.key)
		c.stats.Evictions++
	}
}
