package qcache

import (
	"testing"

	"affinity/internal/interval"
	"affinity/internal/plan"
	"affinity/internal/stats"
	"affinity/internal/timeseries"
)

func pair(u, v int) timeseries.Pair {
	return timeseries.Pair{U: timeseries.SeriesID(u), V: timeseries.SeriesID(v)}
}

func enabled(maxBytes int64, history int) *Cache {
	return New(Options{Enabled: true, MaxBytes: maxBytes, EpochHistory: history})
}

func TestDisabledAndNilCacheAreNoOps(t *testing.T) {
	if c := New(Options{}); c != nil {
		t.Fatalf("New with Enabled=false = %v, want nil", c)
	}
	var c *Cache
	key := IntervalKey(stats.Covariance, plan.MethodAffine, interval.AtLeast(1))
	if _, _, ok := c.Lookup(key, 0); ok {
		t.Fatal("nil cache Lookup reported a hit")
	}
	if _, ok := c.PlanRepair(key, 1); ok {
		t.Fatal("nil cache PlanRepair reported a plan")
	}
	// None of these may panic.
	c.Put(key, 0, nil, nil)
	c.Miss()
	c.NoteRepairFallback()
	c.CommitRepair(key, 1, nil, nil, 0)
	c.OnAdvance(1, nil, true)
	if s := c.Stats(); s != (Stats{}) {
		t.Fatalf("nil cache Stats = %+v, want zero", s)
	}
}

func TestExactHitRoundTrip(t *testing.T) {
	c := enabled(0, 0)
	key := IntervalKey(stats.Covariance, plan.MethodAffine, interval.AtLeast(0.5))
	pairs := []timeseries.Pair{pair(0, 1), pair(0, 2)}
	values := []float64{0.7, 0.9}
	c.Put(key, 0, pairs, values)

	// The same predicate spelled differently must land on the same entry.
	alias := IntervalKey(stats.Covariance, plan.MethodAffine,
		interval.New(interval.Closed(0.5), interval.Unbounded()))
	r, tier, ok := c.Lookup(alias, 0)
	if !ok || tier != TierExact {
		t.Fatalf("Lookup = tier %v ok %v, want exact hit", tier, ok)
	}
	if len(r.Pairs) != 2 || r.Pairs[0] != pair(0, 1) || r.Values[1] != 0.9 {
		t.Fatalf("Lookup returned %+v", r)
	}
	if s := c.Stats(); s.ExactHits != 1 || s.Entries != 1 {
		t.Fatalf("Stats = %+v, want 1 exact hit, 1 entry", s)
	}
}

func TestExactHitIsAllocationFree(t *testing.T) {
	c := enabled(0, 0)
	key := TopKKey(stats.Correlation, plan.MethodIndex, 5, true)
	c.Put(key, 0, []timeseries.Pair{pair(1, 2)}, []float64{0.99})
	allocs := testing.AllocsPerRun(100, func() {
		if _, _, ok := c.Lookup(key, 0); !ok {
			t.Fatal("lost the entry")
		}
	})
	if allocs != 0 {
		t.Fatalf("exact hit allocates %v times, want 0", allocs)
	}
}

func TestEpochGuards(t *testing.T) {
	c := enabled(0, 0)
	key := IntervalKey(stats.Covariance, plan.MethodAffine, interval.AtLeast(0))
	// A store from a stale epoch pin must be dropped.
	c.OnAdvance(1, nil, true)
	c.Put(key, 0, []timeseries.Pair{pair(0, 1)}, []float64{1})
	if s := c.Stats(); s.Entries != 0 {
		t.Fatalf("stale Put stored an entry: %+v", s)
	}
	c.Put(key, 1, []timeseries.Pair{pair(0, 1)}, []float64{1})
	// A query pinned to an older epoch must miss.
	if _, _, ok := c.Lookup(key, 0); ok {
		t.Fatal("stale-epoch Lookup hit")
	}
	if _, _, ok := c.Lookup(key, 1); !ok {
		t.Fatal("current-epoch Lookup missed")
	}
}

func TestNaNKeysRejected(t *testing.T) {
	c := enabled(0, 0)
	nan := interval.New(interval.Closed(0), interval.Open(nan64()))
	key := IntervalKey(stats.Covariance, plan.MethodAffine, nan)
	c.Put(key, 0, []timeseries.Pair{pair(0, 1)}, []float64{1})
	if s := c.Stats(); s.Entries != 0 {
		t.Fatalf("NaN-endpoint key was stored: %+v", s)
	}
	if k := TopKKey(stats.Covariance, plan.MethodAffine, 0, true); k.valid() {
		t.Fatal("k=0 key reported valid")
	}
}

func nan64() float64 {
	var zero float64
	return zero / zero
}

func TestTopKPrefix(t *testing.T) {
	c := enabled(0, 0)
	deep := TopKKey(stats.Correlation, plan.MethodAffine, 4, true)
	pairs := []timeseries.Pair{pair(0, 1), pair(0, 2), pair(1, 2), pair(1, 3)}
	values := []float64{0.9, 0.8, 0.7, 0.6}
	c.Put(deep, 0, pairs, values)

	shallow := TopKKey(stats.Correlation, plan.MethodAffine, 2, true)
	r, tier, ok := c.Lookup(shallow, 0)
	if !ok || tier != TierContained {
		t.Fatalf("prefix lookup = tier %v ok %v", tier, ok)
	}
	if len(r.Pairs) != 2 || r.Pairs[1] != pair(0, 2) || r.Values[1] != 0.8 {
		t.Fatalf("prefix = %+v", r)
	}
	// Returned prefix slices must not expose the deeper tail through append.
	if cap(r.Pairs) != 2 || cap(r.Values) != 2 {
		t.Fatalf("prefix caps = %d/%d, want 2/2", cap(r.Pairs), cap(r.Values))
	}
	// Opposite direction must not match.
	if _, _, ok := c.Lookup(TopKKey(stats.Correlation, plan.MethodAffine, 2, false), 0); ok {
		t.Fatal("opposite-direction top-k hit")
	}
	// Deeper than cached must not match.
	if _, _, ok := c.Lookup(TopKKey(stats.Correlation, plan.MethodAffine, 5, true), 0); ok {
		t.Fatal("deeper top-k hit")
	}
}

func TestIntervalContainment(t *testing.T) {
	c := enabled(0, 0)
	wide := IntervalKey(stats.Covariance, plan.MethodAffine, interval.Between(0, 1))
	pairs := []timeseries.Pair{pair(0, 1), pair(0, 2), pair(1, 2)}
	values := []float64{0.1, 0.5, 0.9}
	c.Put(wide, 0, pairs, values)

	narrow := IntervalKey(stats.Covariance, plan.MethodAffine, interval.Between(0.4, 0.95))
	r, tier, ok := c.Lookup(narrow, 0)
	if !ok || tier != TierContained {
		t.Fatalf("containment lookup = tier %v ok %v", tier, ok)
	}
	if len(r.Pairs) != 2 || r.Pairs[0] != pair(0, 2) || r.Pairs[1] != pair(1, 2) {
		t.Fatalf("filtered rows = %+v", r.Pairs)
	}
	// A query not contained in the entry must miss: same endpoints but the
	// entry's closed bound cannot serve values its open query would include.
	outside := IntervalKey(stats.Covariance, plan.MethodAffine, interval.Between(-0.5, 0.5))
	if _, _, ok := c.Lookup(outside, 0); ok {
		t.Fatal("non-contained interval hit")
	}
	// Different method must miss (method is part of the key identity).
	other := IntervalKey(stats.Covariance, plan.MethodNaive, interval.Between(0.4, 0.95))
	if _, _, ok := c.Lookup(other, 0); ok {
		t.Fatal("cross-method containment hit")
	}
}

func TestCoversOpenClosedEdges(t *testing.T) {
	cases := []struct {
		outer, inner string
		want         bool
	}{
		{"[0, 1]", "[0, 1]", true},
		{"[0, 1]", "(0, 1)", true},
		{"(0, 1)", "[0, 1]", false},
		{"(0, 1)", "(0, 1)", true},
		{"[0, 1]", "[0.5, 2]", false},
		{">= 0.5", "> 0.5", true},
		{"> 0.5", ">= 0.5", false},
		{"<= 1", "< 1", true},
	}
	for _, tc := range cases {
		outer, err := interval.Parse(tc.outer)
		if err != nil {
			t.Fatal(err)
		}
		inner, err := interval.Parse(tc.inner)
		if err != nil {
			t.Fatal(err)
		}
		if got := covers(outer.Canonical(), inner.Canonical()); got != tc.want {
			t.Errorf("covers(%q, %q) = %v, want %v", tc.outer, tc.inner, got, tc.want)
		}
	}
}

func TestLRUEvictionIsDeterministic(t *testing.T) {
	// Budget for roughly two entries: each entry is 128 + 16 + 8 = 152 bytes.
	// The intervals are disjoint so no lookup below can fall through to the
	// containment tier and mask an eviction.
	c := enabled(330, 0)
	k1 := IntervalKey(stats.Covariance, plan.MethodAffine, interval.Between(0, 1))
	k2 := IntervalKey(stats.Covariance, plan.MethodAffine, interval.Between(2, 3))
	k3 := IntervalKey(stats.Covariance, plan.MethodAffine, interval.Between(4, 5))
	c.Put(k1, 0, []timeseries.Pair{pair(0, 1)}, []float64{1})
	c.Put(k2, 0, []timeseries.Pair{pair(0, 2)}, []float64{2})
	// Touch k1 so k2 becomes the LRU victim.
	if _, _, ok := c.Lookup(k1, 0); !ok {
		t.Fatal("k1 missed")
	}
	c.Put(k3, 0, []timeseries.Pair{pair(0, 3)}, []float64{3})

	if _, _, ok := c.Lookup(k2, 0); ok {
		t.Fatal("LRU victim k2 still cached")
	}
	if _, _, ok := c.Lookup(k1, 0); !ok {
		t.Fatal("recently used k1 evicted")
	}
	if _, _, ok := c.Lookup(k3, 0); !ok {
		t.Fatal("new entry k3 evicted")
	}
	s := c.Stats()
	if s.Evictions != 1 || s.Entries != 2 {
		t.Fatalf("Stats = %+v, want 1 eviction, 2 entries", s)
	}
	if s.Bytes > 330 {
		t.Fatalf("bytes %d exceed budget", s.Bytes)
	}
}

func TestOversizeResultNotStored(t *testing.T) {
	c := enabled(200, 0)
	pairs := make([]timeseries.Pair, 100)
	values := make([]float64, 100)
	c.Put(IntervalKey(stats.Covariance, plan.MethodAffine, interval.AtLeast(0)), 0, pairs, values)
	if s := c.Stats(); s.Entries != 0 {
		t.Fatalf("oversize entry stored: %+v", s)
	}
}

func TestPlanRepairCandidates(t *testing.T) {
	c := enabled(0, 4)
	key := IntervalKey(stats.Covariance, plan.MethodAffine, interval.AtLeast(0.5))
	c.Put(key, 0, []timeseries.Pair{pair(1, 3), pair(2, 4)}, []float64{0.6, 0.7})

	c.OnAdvance(1, []timeseries.Pair{pair(0, 1), pair(2, 4)}, false)
	c.OnAdvance(2, []timeseries.Pair{pair(0, 2)}, false)

	rp, ok := c.PlanRepair(key, 2)
	if !ok {
		t.Fatal("PlanRepair not possible")
	}
	want := []timeseries.Pair{pair(0, 1), pair(0, 2), pair(1, 3), pair(2, 4)}
	if len(rp.Candidates) != len(want) {
		t.Fatalf("candidates = %v, want %v", rp.Candidates, want)
	}
	for i, p := range want {
		if rp.Candidates[i] != p {
			t.Fatalf("candidates = %v, want %v (sorted, deduped)", rp.Candidates, want)
		}
	}
	if rp.StalePairs != 3 {
		t.Fatalf("StalePairs = %d, want 3", rp.StalePairs)
	}

	// Committing migrates the entry to the new epoch and the exact tier
	// serves it there.
	c.CommitRepair(key, 2, []timeseries.Pair{pair(1, 3)}, []float64{0.8}, len(rp.Candidates))
	r, tier, ok := c.Lookup(key, 2)
	if !ok || tier != TierExact || len(r.Pairs) != 1 {
		t.Fatalf("post-repair lookup = %+v tier %v ok %v", r, tier, ok)
	}
	s := c.Stats()
	if s.RepairHits != 1 || s.RepairedPairs != 4 {
		t.Fatalf("Stats = %+v, want 1 repair hit, 4 repaired pairs", s)
	}
}

func TestPlanRepairRefusesFullRefitWindow(t *testing.T) {
	c := enabled(0, 4)
	key := IntervalKey(stats.Covariance, plan.MethodAffine, interval.AtLeast(0.5))
	c.Put(key, 0, []timeseries.Pair{pair(1, 3)}, []float64{0.6})
	c.OnAdvance(1, nil, true)
	if _, ok := c.PlanRepair(key, 1); ok {
		t.Fatal("PlanRepair crossed a full-refit epoch")
	}
	// The entry is unrepairable and must have been expired eagerly.
	if s := c.Stats(); s.Entries != 0 || s.Expired != 1 {
		t.Fatalf("Stats = %+v, want the entry expired", s)
	}
}

func TestRingWindowExpiry(t *testing.T) {
	c := enabled(0, 2)
	key := IntervalKey(stats.Covariance, plan.MethodAffine, interval.AtLeast(0.5))
	c.Put(key, 0, []timeseries.Pair{pair(1, 3)}, []float64{0.6})
	c.OnAdvance(1, []timeseries.Pair{}, false)
	c.OnAdvance(2, []timeseries.Pair{}, false)
	if _, ok := c.PlanRepair(key, 2); !ok {
		t.Fatal("entry within the window not repairable")
	}
	// Epoch 1's stale set falls out of the 2-epoch ring; the entry (epoch 0)
	// can no longer prove contiguous coverage and must expire.
	c.OnAdvance(3, []timeseries.Pair{}, false)
	if s := c.Stats(); s.Entries != 0 || s.Expired != 1 {
		t.Fatalf("Stats = %+v, want the out-of-window entry expired", s)
	}
}

func TestTopKEntriesAreNotRepairable(t *testing.T) {
	c := enabled(0, 4)
	key := TopKKey(stats.Covariance, plan.MethodAffine, 3, true)
	c.Put(key, 0, []timeseries.Pair{pair(1, 3)}, []float64{0.6})
	c.OnAdvance(1, []timeseries.Pair{}, false)
	if _, ok := c.PlanRepair(key, 1); ok {
		t.Fatal("top-k entry planned a repair")
	}
}

func TestMissCounter(t *testing.T) {
	c := enabled(0, 0)
	c.Miss()
	c.Miss()
	if s := c.Stats(); s.Misses != 2 {
		t.Fatalf("Misses = %d, want 2", s.Misses)
	}
	if h := (Stats{ExactHits: 1, ContainmentHits: 2, RepairHits: 3}).Hits(); h != 6 {
		t.Fatalf("Hits() = %d, want 6", h)
	}
}

func TestEntryStatsOrder(t *testing.T) {
	c := enabled(0, 0)
	k1 := IntervalKey(stats.Covariance, plan.MethodAffine, interval.AtLeast(1))
	k2 := IntervalKey(stats.Covariance, plan.MethodAffine, interval.AtLeast(2))
	c.Put(k1, 0, []timeseries.Pair{pair(0, 1)}, []float64{1})
	c.Put(k2, 0, []timeseries.Pair{pair(0, 2)}, []float64{2})
	c.Lookup(k1, 0)
	es := c.EntryStats()
	if len(es) != 2 || es[0].Key != k1 || es[1].Key != k2 {
		t.Fatalf("EntryStats order = %+v, want k1 (MRU) first", es)
	}
	if es[0].Hits != 1 || es[0].Rows != 1 {
		t.Fatalf("EntryStats[0] = %+v", es[0])
	}
}
