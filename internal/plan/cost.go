package plan

import (
	"math"

	"affinity/internal/interval"
	"affinity/internal/measure"
	"affinity/internal/scape"
)

// TableStats describes the epoch a query will run against — the inputs the
// cost formulas scale with.  The engine fills it once per epoch.
type TableStats struct {
	// NumSeries (n), NumSamples (m) and NumPairs (n(n-1)/2) describe the
	// window.
	NumSeries  int
	NumSamples int
	NumPairs   int
	// NumPivots is the number of pivot nodes in the SCAPE index (and the
	// number of B-tree descents a pairwise index query pays).
	NumPivots int
	// FallbackPairs is the number of sequence pairs without an affine
	// relationship (pruned by MaxLSFD): the affine method answers them with a
	// raw-series scan, so they bill at naive cost.
	FallbackPairs int
	// HasIndex reports whether the epoch carries a SCAPE index.
	HasIndex bool
	// SketchCoefficients is the width d of the epoch's coefficient sketches
	// (zero when the sketch tier is disabled), and SketchAmbiguity the
	// epoch's deterministic estimate of the prescreen's ambiguous fraction —
	// the mean relative bound width across series, which is the chance a
	// pair's bound straddles a query endpoint.  Both derive from the epoch
	// state alone, so sketch-aware plans stay identical at any parallelism.
	SketchCoefficients int
	SketchAmbiguity    float64
}

// CostModel prices a query per execution method.  The coefficients are
// per-operation costs in nanosecond-scale abstract units, calibrated offline
// against the planner crossover experiment (`affinity-bench -experiment
// planner`, recorded in BENCH_pr3.json); their ratios, not their absolute
// values, drive the choices.  The model is deliberately blind to the worker
// count: parallelism speeds every method by roughly the same factor, and
// keeping it out of the formulas makes plan choices identical at any
// Parallelism level.
type CostModel struct {
	// SampleCost is the cost of touching one raw sample in a naive
	// computation (the W_N inner loop).
	SampleCost float64
	// AffinePairCost is the cost of one closed-form propagation through an
	// affine relationship (map lookup + a handful of flops).
	AffinePairCost float64
	// LookupCost is the cost of reading one cached per-series estimate (the
	// W_A location path).
	LookupCost float64
	// TreeStepCost is the cost of one B-tree descent level.
	TreeStepCost float64
	// CandidateCost is the cost of resolving one index candidate exactly
	// (the D-measure band evaluation of Section 5.3).
	CandidateCost float64
	// RowCost is the cost of emitting one result row.
	RowCost float64
}

// DefaultCostModel returns the calibrated default coefficients.
func DefaultCostModel() CostModel {
	return CostModel{
		SampleCost:     1.5,
		AffinePairCost: 55,
		LookupCost:     4,
		TreeStepCost:   25,
		CandidateCost:  45,
		RowCost:        12,
	}
}

// withDefaults treats a zero model as the default one, so an unset
// Config.CostModel never divides the world by zero.
func (c CostModel) withDefaults() CostModel {
	if c == (CostModel{}) {
		return DefaultCostModel()
	}
	return c
}

// defaultSelectivityFrac is the assumed result fraction when no index
// estimate is available (no index built, or the measure is not indexable).
// It only weights the emit term, which is small next to the scan terms.
const defaultSelectivityFrac = 0.1

// Plan prices every applicable method for the query and returns the decision.
// sel is the index's selectivity estimate, or nil when the index cannot
// answer the query (absent, measure not indexed, or a compute query).
//
// The per-measure coefficients are keyed by the measure's spec shape rather
// than its identity: the W_N scan term scales with Spec.NaivePasses (a
// D-measure pays the base pass plus its per-series statistic passes, a median
// pays its sort), the W_A fallback term pays the same naive passes, and a
// measure whose spec withholds AffinePropagatable never prices the affine
// method at all.  A measure registered tomorrow is priced correctly today.
func (c CostModel) Plan(spec QuerySpec, st TableStats, sel *scape.Selectivity) Plan {
	c = c.withDefaults()
	p := Plan{
		Spec:       spec,
		CostNaive:  math.Inf(1),
		CostAffine: math.Inf(1),
		CostIndex:  math.Inf(1),
		CostSketch: math.Inf(1),
	}
	sp, known := measure.Find(spec.Measure)
	if sel != nil {
		p.EstimatedRows = sel.Rows
		p.Candidates = sel.Candidates
		p.SelectivityExact = sel.Exact
	} else if known {
		p.EstimatedRows = c.heuristicRows(spec, sp, st)
	}
	if !known {
		// An unregistered measure prices nothing; execution will reject it
		// with ErrUnknownMeasure regardless of the chosen method.
		p.Method, p.EstimatedCost = MethodNaive, p.CostNaive
		return p
	}
	rows := float64(p.EstimatedRows)
	passes := sp.NaivePasses

	switch spec.Kind {
	case KindCompute:
		if sp.Location() {
			k := float64(spec.NumTargets)
			p.CostNaive = k * float64(st.NumSamples) * c.SampleCost * passes
			if sp.AffinePropagatable {
				p.CostAffine = k * c.LookupCost
			}
		} else {
			pairs := float64(spec.NumTargets) * float64(spec.NumTargets+1) / 2
			p.CostNaive = pairs * float64(st.NumSamples) * c.SampleCost * passes
			if sp.AffinePropagatable {
				p.CostAffine = pairs * (c.AffinePairCost + c.fallbackFrac(st)*c.naivePairCost(st, passes))
			}
		}

	case KindInterval:
		if sp.Location() {
			p.CostNaive = float64(st.NumSeries)*float64(st.NumSamples)*c.SampleCost*passes + rows*c.RowCost
			if sp.AffinePropagatable {
				p.CostAffine = float64(st.NumSeries)*c.LookupCost + rows*c.RowCost
			}
			if sel != nil {
				p.CostIndex = c.TreeStepCost*log2(st.NumSeries) + rows*c.RowCost
			}
		} else {
			p.CostNaive = float64(st.NumPairs)*float64(st.NumSamples)*c.SampleCost*passes + rows*c.RowCost
			// A sketch-enabled epoch executes the naive route through the
			// filter-and-refine prescreen, so the naive price IS the sketch
			// price: the O(d)-per-pair bound pass plus the ambiguous
			// fraction's exact evaluations.  A half-bounded (MET) predicate
			// has one endpoint to straddle instead of two, halving the
			// ambiguous estimate.
			if st.SketchCoefficients > 0 && sp.SketchBoundable() {
				amb := st.SketchAmbiguity * boundedEndpoints(spec.Interval) / 2
				p.CostSketch = c.sketchCost(st, passes, amb, rows)
				p.CostNaive = p.CostSketch
			}
			// Pruned pairs fall back to a raw scan plus the failed relationship
			// lookup, so a mostly-pruned epoch prices affine above naive.
			if sp.AffinePropagatable {
				p.CostAffine = float64(st.NumPairs-st.FallbackPairs)*c.AffinePairCost +
					float64(st.FallbackPairs)*(c.LookupCost+c.naivePairCost(st, passes)) + rows*c.RowCost
			}
			if sel != nil {
				perPivot := log2(divCeil(st.NumPairs, st.NumPivots))
				p.CostIndex = float64(st.NumPivots)*c.TreeStepCost*perPivot +
					float64(sel.Candidates)*c.CandidateCost + rows*c.RowCost
			}
		}

	case KindTopK:
		// A top-k query has no a-priori selectivity: every sweep method pays
		// its full scan plus the k-heap, while the best-first index traversal
		// examines roughly the result plus one boundary band per pivot before
		// the optimistic bounds stop it.
		if sp.Location() {
			p.EstimatedRows = min(spec.K, st.NumSeries)
			rows = float64(p.EstimatedRows)
			p.CostNaive = float64(st.NumSeries)*float64(st.NumSamples)*c.SampleCost*passes + rows*c.RowCost
			if sp.AffinePropagatable {
				p.CostAffine = float64(st.NumSeries)*c.LookupCost + rows*c.RowCost
			}
			if st.HasIndex && sp.Indexable {
				// The location tree is scanned whole into the heap.
				p.CostIndex = float64(st.NumSeries)*c.TreeStepCost + rows*c.RowCost
			}
		} else {
			p.EstimatedRows = min(spec.K, st.NumPairs)
			rows = float64(p.EstimatedRows)
			p.CostNaive = float64(st.NumPairs)*float64(st.NumSamples)*c.SampleCost*passes + rows*c.RowCost
			// The sketch-enabled naive route scans best-first and stops when
			// the optimistic bounds cannot beat v_k; the examined fraction is
			// governed by the same bound width the ambiguity estimates.
			if st.SketchCoefficients > 0 && sp.SketchBoundable() {
				p.CostSketch = c.sketchCost(st, passes, st.SketchAmbiguity, rows)
				p.CostNaive = p.CostSketch
			}
			if sp.AffinePropagatable {
				p.CostAffine = float64(st.NumPairs-st.FallbackPairs)*c.AffinePairCost +
					float64(st.FallbackPairs)*(c.LookupCost+c.naivePairCost(st, passes)) + rows*c.RowCost
			}
			if st.HasIndex && sp.Indexable {
				perPivot := log2(divCeil(st.NumPairs, st.NumPivots))
				p.Candidates = min(spec.K+st.NumPivots, st.NumPairs)
				p.CostIndex = float64(st.NumPivots)*c.TreeStepCost*perPivot +
					float64(p.Candidates)*c.CandidateCost + rows*c.RowCost
			}
		}
	}

	// Pick the cheapest applicable method; on exact ties prefer the index,
	// then affine (the structures that scale), so the choice is deterministic.
	p.Method, p.EstimatedCost = MethodIndex, p.CostIndex
	if p.CostAffine < p.EstimatedCost {
		p.Method, p.EstimatedCost = MethodAffine, p.CostAffine
	}
	if p.CostNaive < p.EstimatedCost {
		p.Method, p.EstimatedCost = MethodNaive, p.CostNaive
	}
	return p
}

// RepairCost prices the delta repair of a cached interval result across an
// Advance: one closed-form affine propagation per candidate pair (the cached
// rows plus the epochs' stale sets), the exact-selectivity verification probe
// (one B-tree rank descent per pivot), and the emit term.  The executor
// repairs only when this undercuts the stored plan's CostAffine — the price
// of re-running the sweep the entry came from — so a mostly-stale epoch falls
// back to a cold scan exactly like the ROADMAP's standing-query item asks.
func (c CostModel) RepairCost(candidates, rows int, st TableStats) float64 {
	c = c.withDefaults()
	perPivot := log2(divCeil(st.NumPairs, st.NumPivots))
	return float64(candidates)*c.AffinePairCost +
		float64(st.NumPivots)*c.TreeStepCost*perPivot +
		float64(rows)*c.RowCost
}

// DefaultFanOutCost is the per-shard coordination overhead of a scatter-gather
// execution (dispatch, per-shard result collection, merge bookkeeping), in the
// same abstract units as the CostModel coefficients.  It is of the order of a
// few tree descents: fan-out is cheap next to any real scan, which is exactly
// why the coordinator fans every pairwise query out instead of planning
// "single shard vs all shards".
const DefaultFanOutCost = 200

// ShardedCost prices a scatter-gather execution across shards: the shards run
// in parallel, so the scan term is the most expensive per-shard estimate, plus
// DefaultFanOutCost per shard for the coordinator's dispatch and merge.
//
// The sharded price is reported by a coordinator's Explain for observability
// only — it never feeds a method choice.  Per-shard plans are priced against
// per-shard table statistics, and the coordinator resolves MethodAuto against
// the global (unsharded) table, so the chosen method is identical at every
// shard count; folding fan-out overhead into the choice would break the
// sharded/unsharded determinism contract.
func (c CostModel) ShardedCost(perShard []float64) float64 {
	if len(perShard) == 0 {
		return 0
	}
	worst := perShard[0]
	for _, v := range perShard[1:] {
		if v > worst {
			worst = v
		}
	}
	return worst + float64(len(perShard))*DefaultFanOutCost
}

// sketchCost prices the filter-and-refine naive sweep: the prescreen touches
// d sketched coefficients per pair (the merge-intersection bound), the
// estimated ambiguous fraction pays the full exact evaluation, and emission
// is per row as everywhere else.
func (c CostModel) sketchCost(st TableStats, passes, ambFrac, rows float64) float64 {
	if ambFrac > 1 {
		ambFrac = 1
	}
	return float64(st.NumPairs)*float64(st.SketchCoefficients)*c.SampleCost +
		ambFrac*float64(st.NumPairs)*c.naivePairCost(st, passes) +
		rows*c.RowCost
}

// boundedEndpoints counts an interval predicate's finite endpoints (0–2): the
// boundaries a sketched bound can straddle.
func boundedEndpoints(iv interval.Interval) float64 {
	n := 0.0
	if !iv.Lo.Unbounded {
		n++
	}
	if !iv.Hi.Unbounded {
		n++
	}
	return n
}

// heuristicRows is the result-size guess without an index estimate.
func (c CostModel) heuristicRows(spec QuerySpec, sp *measure.Spec, st TableStats) int {
	if spec.Kind == KindCompute {
		return 0
	}
	if sp.Location() {
		return int(defaultSelectivityFrac * float64(st.NumSeries))
	}
	return int(defaultSelectivityFrac * float64(st.NumPairs))
}

// fallbackFrac is the fraction of pairs the affine method answers naively.
func (c CostModel) fallbackFrac(st TableStats) float64 {
	if st.NumPairs == 0 {
		return 0
	}
	return float64(st.FallbackPairs) / float64(st.NumPairs)
}

// naivePairCost is the cost of one from-scratch pairwise computation at the
// spec's pass weight.
func (c CostModel) naivePairCost(st TableStats, passes float64) float64 {
	return float64(st.NumSamples) * c.SampleCost * passes
}

// log2 returns log2(n+2): a tree-height proxy that stays positive for tiny n.
func log2(n int) float64 { return math.Log2(float64(n + 2)) }

// divCeil returns ceil(a/b), with b clamped to at least 1.
func divCeil(a, b int) int {
	if b < 1 {
		b = 1
	}
	return (a + b - 1) / b
}
