package plan

import (
	"math"
	"strings"
	"testing"

	"affinity/internal/scape"
	"affinity/internal/stats"
)

// sketchTable is bigTable with the sketch tier enabled at the default width
// and a mildly ambiguous epoch.
func sketchTable() TableStats {
	st := bigTable()
	st.SketchCoefficients = 16
	st.SketchAmbiguity = 0.1
	return st
}

// TestSketchCostLowersNaiveRoute: on a sketch-enabled epoch the naive route
// executes through the prescreen, so its price must drop below the plain
// blocked sweep's (d + ambiguous·m per pair, not m per pair) and CostNaive
// must equal CostSketch — the planner prices the route that will actually
// run, which is how MethodAuto never picks a slower route than the best
// fixed method.
func TestSketchCostLowersNaiveRoute(t *testing.T) {
	cm := DefaultCostModel()
	for _, spec := range []QuerySpec{
		Range(stats.Covariance, 0.2, 0.9),
		TopK(stats.Correlation, 10, true),
	} {
		plain := cm.Plan(spec, bigTable(), nil)
		sk := cm.Plan(spec, sketchTable(), nil)
		if !math.IsInf(plain.CostSketch, 1) {
			t.Fatalf("%v: sketch cost priced without sketches: %v", spec, plain.CostSketch)
		}
		if math.IsInf(sk.CostSketch, 1) {
			t.Fatalf("%v: sketch cost not priced on a sketch-enabled epoch", spec)
		}
		if sk.CostNaive != sk.CostSketch {
			t.Fatalf("%v: CostNaive %v != CostSketch %v — the naive route IS the prescreen",
				spec, sk.CostNaive, sk.CostSketch)
		}
		if sk.CostSketch >= plain.CostNaive {
			t.Fatalf("%v: prescreen at 10%% ambiguity priced %v, not below the plain sweep %v",
				spec, sk.CostSketch, plain.CostNaive)
		}
		if sk.EstimatedCost > sk.CostNaive || sk.EstimatedCost > sk.CostAffine ||
			sk.EstimatedCost > sk.CostIndex {
			t.Fatalf("%v: auto choice %v costlier than a fixed method: %v", spec, sk.EstimatedCost, sk)
		}
	}
}

// TestSketchCostHalfBoundedCheaper: a MET predicate has one endpoint for a
// bound to straddle, a MER predicate two, so at equal ambiguity the MET
// prescreen prices cheaper.
func TestSketchCostHalfBoundedCheaper(t *testing.T) {
	cm := DefaultCostModel()
	st := sketchTable()
	met := cm.Plan(Threshold(stats.Covariance, 0.9, scape.Above), st, nil)
	mer := cm.Plan(Range(stats.Covariance, 0.2, 0.9), st, nil)
	if !(met.CostSketch < mer.CostSketch) {
		t.Fatalf("MET sketch cost %v not below MER %v", met.CostSketch, mer.CostSketch)
	}
}

// TestSketchCostInapplicable: location measures have no pairwise sketch, and
// a fully ambiguous epoch never prices below the plain sweep.
func TestSketchCostInapplicable(t *testing.T) {
	cm := DefaultCostModel()
	if p := cm.Plan(Threshold(stats.Mean, 1, scape.Above), sketchTable(), nil); !math.IsInf(p.CostSketch, 1) {
		t.Fatalf("location query priced a sketch prescreen: %v", p)
	}
	st := sketchTable()
	st.SketchAmbiguity = 1
	worst := cm.Plan(Range(stats.Covariance, 0.2, 0.9), st, nil)
	plain := cm.Plan(Range(stats.Covariance, 0.2, 0.9), bigTable(), nil)
	if worst.CostSketch < plain.CostNaive {
		t.Fatalf("fully ambiguous prescreen %v priced below the plain sweep %v",
			worst.CostSketch, plain.CostNaive)
	}
}

// TestPlanStringSketchActuals: Explain output renders the prescreen actuals.
func TestPlanStringSketchActuals(t *testing.T) {
	p := Plan{Spec: Range(stats.Covariance, 0, 1), SketchedPairs: 820, SketchRefinedPairs: 37}
	if s := p.String(); !strings.Contains(s, "sketch 820 pairs, 37 refined") {
		t.Fatalf("Plan.String() = %q", s)
	}
	if s := (Plan{Spec: Range(stats.Covariance, 0, 1)}).String(); strings.Contains(s, "sketch") {
		t.Fatalf("sketch actuals rendered on a non-sketch plan: %q", s)
	}
}
