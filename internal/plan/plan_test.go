package plan

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"affinity/internal/interval"
	"affinity/internal/scape"
	"affinity/internal/stats"
)

// bigTable is a thousand-series epoch with an index: the regime the paper's
// evaluation runs in.
func bigTable() TableStats {
	return TableStats{
		NumSeries:  1000,
		NumSamples: 400,
		NumPairs:   1000 * 999 / 2,
		NumPivots:  1800,
		HasIndex:   true,
	}
}

func TestMethodStrings(t *testing.T) {
	for m, want := range map[Method]string{
		MethodNaive: "WN", MethodAffine: "WA", MethodIndex: "SCAPE", MethodAuto: "AUTO",
	} {
		if m.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(m), m.String(), want)
		}
	}
	if Method(9).String() != "method(9)" {
		t.Errorf("unknown method renders %q", Method(9).String())
	}
	if MethodAuto.Concrete() || !MethodIndex.Concrete() {
		t.Fatal("Concrete misclassifies")
	}
	for k, want := range map[Kind]string{KindInterval: "INTERVAL", KindCompute: "MEC", KindTopK: "MEK"} {
		if k.String() != want {
			t.Errorf("kind %d renders %q, want %q", int(k), k.String(), want)
		}
	}
	// Out-of-range kinds render a stable unknown(N) form in both directions.
	for _, k := range []Kind{Kind(9), Kind(-3)} {
		want := fmt.Sprintf("unknown(%d)", int(k))
		if k.String() != want {
			t.Errorf("kind %d renders %q, want %q", int(k), k.String(), want)
		}
	}
}

func TestSpecConstructors(t *testing.T) {
	s := Threshold(stats.Correlation, 0.9, scape.Above)
	if s.Kind != KindInterval || s.Measure != stats.Correlation {
		t.Fatalf("threshold spec %+v", s)
	}
	if !s.Interval.Contains(0.95) || s.Interval.Contains(0.9) || s.Interval.Contains(0.5) {
		t.Fatalf("threshold interval %v is not (0.9, +inf)", s.Interval)
	}
	if pq := s.PairQuery(); pq.Interval != s.Interval || pq.Measure != stats.Correlation {
		t.Fatalf("pair query %+v", pq)
	}
	if !strings.Contains(s.String(), "MET correlation > 0.9") {
		t.Fatalf("threshold spec renders %q", s.String())
	}
	r := Range(stats.Covariance, -1, 2)
	if r.Kind != KindInterval || !r.Interval.Bounded() {
		t.Fatalf("range spec %+v", r)
	}
	if !r.Interval.Contains(-1) || !r.Interval.Contains(2) || r.Interval.Contains(2.1) {
		t.Fatalf("range interval %v is not [-1, 2]", r.Interval)
	}
	if !strings.Contains(r.String(), "MER covariance in [-1, 2]") {
		t.Fatalf("range spec renders %q", r.String())
	}
	iv := Interval(stats.Cosine, interval.AtLeast(0.5))
	if iv.Kind != KindInterval || !iv.Interval.Contains(0.5) {
		t.Fatalf("interval spec %+v", iv)
	}
	k := TopK(stats.Correlation, 10, true)
	if k.Kind != KindTopK || k.K != 10 || !k.Largest {
		t.Fatalf("topk spec %+v", k)
	}
	if !strings.Contains(k.String(), "MEK correlation top-10 largest") {
		t.Fatalf("topk spec renders %q", k.String())
	}
	if !strings.Contains(TopK(stats.EuclideanDistance, 3, false).String(), "top-3 smallest") {
		t.Fatalf("smallest topk renders %q", TopK(stats.EuclideanDistance, 3, false).String())
	}
	cq := Compute(stats.Mean, 17)
	if cq.Kind != KindCompute || cq.NumTargets != 17 {
		t.Fatalf("compute spec %+v", cq)
	}
	for _, spec := range []QuerySpec{s, r, iv, k, cq} {
		if spec.String() == "" {
			t.Fatal("spec renders empty")
		}
	}
}

// TestTopKCosts pins the top-k pricing shape: with an index present and an
// indexable measure, a small-k query routes to the best-first traversal; a
// non-indexable measure never prices the index.
func TestTopKCosts(t *testing.T) {
	cm := DefaultCostModel()
	p := cm.Plan(TopK(stats.Correlation, 10, true), bigTable(), nil)
	if p.Method != MethodIndex {
		t.Fatalf("top-10 chose %v, want SCAPE: %v", p.Method, p)
	}
	if p.EstimatedRows != 10 {
		t.Fatalf("top-10 estimated rows = %d", p.EstimatedRows)
	}
	if pj := cm.Plan(TopK(stats.Jaccard, 10, true), bigTable(), nil); !math.IsInf(pj.CostIndex, 1) {
		t.Fatalf("jaccard top-k priced the index: %v", pj)
	}
	st := bigTable()
	st.HasIndex = false
	if pn := cm.Plan(TopK(stats.Correlation, 10, true), st, nil); pn.Method == MethodIndex {
		t.Fatalf("no-index top-k chose the index: %v", pn)
	}
	if pl := cm.Plan(TopK(stats.Mean, 5, false), bigTable(), nil); pl.Method == MethodNaive {
		t.Fatalf("location top-k should avoid the full naive recomputation: %v", pl)
	}
}

// TestChoosesIndexForSelectiveQuery pins the headline decision: a selective
// MET query on an indexed measure goes to SCAPE.
func TestChoosesIndexForSelectiveQuery(t *testing.T) {
	sel := &scape.Selectivity{Rows: 120, Exact: true}
	p := DefaultCostModel().Plan(Threshold(stats.Covariance, 0.9, scape.Above), bigTable(), sel)
	if p.Method != MethodIndex {
		t.Fatalf("chose %v, want SCAPE: %v", p.Method, p)
	}
	if p.EstimatedRows != 120 || !p.SelectivityExact {
		t.Fatalf("selectivity not threaded: %+v", p)
	}
	if p.CostIndex >= p.CostAffine || p.CostAffine >= p.CostNaive {
		t.Fatalf("cost ordering unexpected: %v", p)
	}
	if p.EstimatedCost != p.CostIndex {
		t.Fatalf("EstimatedCost %v != chosen cost %v", p.EstimatedCost, p.CostIndex)
	}
}

// TestChoosesAffineWithoutIndex pins that un-indexable queries (Jaccard, or
// an engine built with SkipIndex) fall to the affine sweep.
func TestChoosesAffineWithoutIndex(t *testing.T) {
	st := bigTable()
	st.HasIndex = false
	p := DefaultCostModel().Plan(Threshold(stats.Jaccard, 0.5, scape.Above), st, nil)
	if p.Method != MethodAffine {
		t.Fatalf("chose %v, want WA: %v", p.Method, p)
	}
	if !math.IsInf(p.CostIndex, 1) {
		t.Fatalf("index cost should be +Inf without an estimate: %v", p)
	}
	if p.SelectivityExact || p.EstimatedRows == 0 {
		t.Fatalf("heuristic rows expected: %+v", p)
	}
}

// TestChoosesNaiveWhenFullyPruned pins the fallback crossover: when every
// relationship was pruned, the affine method is naive-plus-lookup-overhead
// per pair and the planner picks the plain naive sweep.  (The break-even sits
// very close to 100%: each surviving relationship saves an O(m) scan while a
// pruned one only adds a failed map lookup.)
func TestChoosesNaiveWhenFullyPruned(t *testing.T) {
	st := bigTable()
	st.HasIndex = false
	st.FallbackPairs = st.NumPairs
	p := DefaultCostModel().Plan(Threshold(stats.Correlation, 0.5, scape.Above), st, nil)
	if p.Method != MethodNaive {
		t.Fatalf("chose %v, want WN: %v", p.Method, p)
	}
}

// TestComputeQueriesNeverChooseIndex pins that MEC queries only weigh the
// naive and affine methods.
func TestComputeQueriesNeverChooseIndex(t *testing.T) {
	cm := DefaultCostModel()
	for _, spec := range []QuerySpec{Compute(stats.Mean, 50), Compute(stats.Correlation, 50)} {
		p := cm.Plan(spec, bigTable(), nil)
		if !math.IsInf(p.CostIndex, 1) {
			t.Fatalf("%v: index cost should be +Inf: %v", spec, p)
		}
		if p.Method != MethodAffine {
			t.Fatalf("%v: chose %v, want WA (O(1) per target vs O(m))", spec, p.Method)
		}
	}
	// A fully pruned epoch flips pairwise MEC back to naive.
	st := bigTable()
	st.FallbackPairs = st.NumPairs
	if p := cm.Plan(Compute(stats.Covariance, 50), st, nil); p.Method != MethodNaive {
		t.Fatalf("fully pruned MEC chose %v, want WN: %v", p.Method, p)
	}
}

// TestCandidateHeavyDerivedQueryAvoidsIndex pins the D-measure crossover:
// when the pruning bounds decide almost nothing (every entry is a candidate
// needing exact evaluation), the tree overhead makes the affine sweep win.
func TestCandidateHeavyDerivedQueryAvoidsIndex(t *testing.T) {
	st := bigTable()
	st.NumPivots = st.NumPairs / 4 // shallow trees: high per-pivot overhead
	sel := &scape.Selectivity{Rows: st.NumPairs / 2, Candidates: st.NumPairs}
	p := DefaultCostModel().Plan(Threshold(stats.Correlation, 0.0, scape.Above), st, sel)
	if p.Method != MethodAffine {
		t.Fatalf("chose %v, want WA: %v", p.Method, p)
	}
}

// TestZeroModelUsesDefaults pins that a zero CostModel behaves like the
// calibrated default, so an unset Config never panics or picks degenerately.
func TestZeroModelUsesDefaults(t *testing.T) {
	sel := &scape.Selectivity{Rows: 10, Exact: true}
	var zero CostModel
	a := zero.Plan(Threshold(stats.Covariance, 0.9, scape.Above), bigTable(), sel)
	b := DefaultCostModel().Plan(Threshold(stats.Covariance, 0.9, scape.Above), bigTable(), sel)
	if a.Method != b.Method || a.EstimatedCost != b.EstimatedCost {
		t.Fatalf("zero model diverges from default: %v vs %v", a, b)
	}
}

// TestLocationThresholdCosts pins the L-measure ordering: index <= affine
// lookup scan <= naive recomputation.
func TestLocationThresholdCosts(t *testing.T) {
	sel := &scape.Selectivity{Rows: 30, Exact: true}
	p := DefaultCostModel().Plan(Range(stats.Mean, 0, 1), bigTable(), sel)
	if p.Method != MethodIndex {
		t.Fatalf("chose %v, want SCAPE: %v", p.Method, p)
	}
	if !(p.CostIndex < p.CostAffine && p.CostAffine < p.CostNaive) {
		t.Fatalf("cost ordering unexpected: %v", p)
	}
}

// TestPlanString smoke-tests the EXPLAIN rendering.
func TestPlanString(t *testing.T) {
	p := DefaultCostModel().Plan(Threshold(stats.Correlation, 0.9, scape.Above),
		bigTable(), &scape.Selectivity{Rows: 5, Exact: true})
	s := p.String()
	for _, frag := range []string{"MET correlation", "SCAPE", "est 5 rows"} {
		if !strings.Contains(s, frag) {
			t.Fatalf("plan rendering %q misses %q", s, frag)
		}
	}
}
