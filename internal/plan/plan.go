// Package plan implements the cost-based query planner that sits between the
// public query API and the execution engine.
//
// The paper's evaluation (Section 6) shows that no single execution method
// wins everywhere: the naive method (W_N) is exact but touches every raw
// sample, the affine method (W_A) answers from closed-form propagations in
// O(1) per pair but degrades to naive scans for pruned relationships, and the
// SCAPE index answers threshold/range queries in time proportional to the
// result — until selectivity grows and a full sweep is cheaper than a tree
// walk per pivot.  The planner makes that choice per query: a QuerySpec is
// the logical query, TableStats describes the epoch it runs against,
// scape.Selectivity supplies the index's O(|pivots|·log) result-size
// estimate, and CostModel.Plan prices every applicable method and picks the
// cheapest.
//
// Everything in this package is deterministic in its inputs: the cost model
// never consults the clock, the worker count or any sampled state, so two
// engines with identical epochs produce identical Plans at any parallelism —
// the PR-2 determinism contract extends to plan choices.
package plan

import (
	"fmt"
	"time"

	"affinity/internal/scape"
	"affinity/internal/stats"
)

// Method selects how a query is executed.
type Method int

const (
	// MethodNaive computes measures from scratch (the paper's W_N).
	MethodNaive Method = iota
	// MethodAffine computes measures through affine relationships (W_A).
	MethodAffine
	// MethodIndex answers threshold/range queries from the SCAPE index.
	MethodIndex
	// MethodAuto routes each query through the cost model, which picks the
	// cheapest applicable concrete method for the query's estimated
	// selectivity.
	MethodAuto
)

// String names the method the way the paper does.
func (m Method) String() string {
	switch m {
	case MethodNaive:
		return "WN"
	case MethodAffine:
		return "WA"
	case MethodIndex:
		return "SCAPE"
	case MethodAuto:
		return "AUTO"
	default:
		return fmt.Sprintf("method(%d)", int(m))
	}
}

// Concrete reports whether m names an executable method (everything but
// MethodAuto).
func (m Method) Concrete() bool {
	return m == MethodNaive || m == MethodAffine || m == MethodIndex
}

// Kind is the logical query type of Section 2.2.
type Kind int

const (
	// KindThreshold is a measure threshold (MET) query.
	KindThreshold Kind = iota
	// KindRange is a measure range (MER) query.
	KindRange
	// KindCompute is a measure computation (MEC) query.
	KindCompute
)

// String names the query kind.
func (k Kind) String() string {
	switch k {
	case KindThreshold:
		return "MET"
	case KindRange:
		return "MER"
	case KindCompute:
		return "MEC"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// QuerySpec is the logical representation of one query: what is asked,
// independent of how it will be executed.
type QuerySpec struct {
	Kind    Kind
	Measure stats.Measure
	// Op and Tau parameterize a threshold query.
	Op  scape.ThresholdOp
	Tau float64
	// Lo and Hi parameterize a range query.
	Lo, Hi float64
	// NumTargets is |ψ| of a compute query (the number of requested series).
	NumTargets int
}

// Threshold builds the spec of a MET query.
func Threshold(m stats.Measure, tau float64, op scape.ThresholdOp) QuerySpec {
	return QuerySpec{Kind: KindThreshold, Measure: m, Tau: tau, Op: op}
}

// Range builds the spec of a MER query.
func Range(m stats.Measure, lo, hi float64) QuerySpec {
	return QuerySpec{Kind: KindRange, Measure: m, Lo: lo, Hi: hi}
}

// Compute builds the spec of a MEC query over numTargets series.
func Compute(m stats.Measure, numTargets int) QuerySpec {
	return QuerySpec{Kind: KindCompute, Measure: m, NumTargets: numTargets}
}

// PairQuery converts a threshold/range spec into the index's query form, used
// to obtain a selectivity estimate.
func (s QuerySpec) PairQuery() scape.PairQuery {
	return scape.PairQuery{
		Measure: s.Measure,
		Range:   s.Kind == KindRange,
		Op:      s.Op,
		Tau:     s.Tau,
		Lo:      s.Lo,
		Hi:      s.Hi,
	}
}

// String renders the spec the way the paper writes queries.
func (s QuerySpec) String() string {
	switch s.Kind {
	case KindThreshold:
		return fmt.Sprintf("MET %v %v %v", s.Measure, s.Op, s.Tau)
	case KindRange:
		return fmt.Sprintf("MER %v in [%v, %v]", s.Measure, s.Lo, s.Hi)
	default:
		return fmt.Sprintf("MEC %v over %d series", s.Measure, s.NumTargets)
	}
}

// Plan is the planner's decision for one query: the chosen method, the
// per-method cost estimates that drove the choice, and — after execution
// through Engine.Explain — the observed actuals.
type Plan struct {
	Spec   QuerySpec
	Method Method

	// EstimatedRows is the expected result size (exact for T-/L-measure
	// index estimates, banded for D-measures, heuristic without an index).
	EstimatedRows int
	// Candidates is the number of exact evaluations an index scan would need
	// (the D-measure pruning band).
	Candidates int
	// SelectivityExact reports whether EstimatedRows came from an exact
	// subtree count rather than a band estimate or heuristic.
	SelectivityExact bool

	// EstimatedCost is the cost of the chosen method in the model's abstract
	// units; CostNaive/CostAffine/CostIndex are the per-method estimates
	// (+Inf for methods not applicable to this query).
	EstimatedCost float64
	CostNaive     float64
	CostAffine    float64
	CostIndex     float64

	// Actuals, filled by the executor when the query ran through Explain.
	ActualRows int
	Duration   time.Duration
}

// String renders the plan for diagnostics and EXPLAIN-style output.
func (p Plan) String() string {
	return fmt.Sprintf("%v → %v (est %d rows, cost %.3g; WN %.3g, WA %.3g, SCAPE %.3g)",
		p.Spec, p.Method, p.EstimatedRows, p.EstimatedCost,
		p.CostNaive, p.CostAffine, p.CostIndex)
}
