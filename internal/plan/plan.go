// Package plan implements the cost-based query planner that sits between the
// public query API and the execution engine.
//
// The paper's evaluation (Section 6) shows that no single execution method
// wins everywhere: the naive method (W_N) is exact but touches every raw
// sample, the affine method (W_A) answers from closed-form propagations in
// O(1) per pair but degrades to naive scans for pruned relationships, and the
// SCAPE index answers interval queries in time proportional to the result —
// until selectivity grows and a full sweep is cheaper than a tree walk per
// pivot.  The planner makes that choice per query: a QuerySpec is the logical
// query, TableStats describes the epoch it runs against, scape.Selectivity
// supplies the index's O(|pivots|·log) result-size estimate, and
// CostModel.Plan prices every applicable method and picks the cheapest.
//
// The logical query language has three kinds: interval queries (the unified
// MET/MER predicate "value ∈ I"), top-k (MEK) queries, and compute (MEC)
// queries.  Threshold and range specs are constructors over the interval
// kind, not kinds of their own.
//
// Everything in this package is deterministic in its inputs: the cost model
// never consults the clock, the worker count or any sampled state, so two
// engines with identical epochs produce identical Plans at any parallelism —
// the PR-2 determinism contract extends to plan choices.
package plan

import (
	"fmt"
	"time"

	"affinity/internal/interval"
	"affinity/internal/scape"
	"affinity/internal/stats"
)

// Method selects how a query is executed.
type Method int

const (
	// MethodNaive computes measures from scratch (the paper's W_N).
	MethodNaive Method = iota
	// MethodAffine computes measures through affine relationships (W_A).
	MethodAffine
	// MethodIndex answers interval and top-k queries from the SCAPE index.
	MethodIndex
	// MethodAuto routes each query through the cost model, which picks the
	// cheapest applicable concrete method for the query's estimated
	// selectivity.
	MethodAuto
)

// String names the method the way the paper does.
func (m Method) String() string {
	switch m {
	case MethodNaive:
		return "WN"
	case MethodAffine:
		return "WA"
	case MethodIndex:
		return "SCAPE"
	case MethodAuto:
		return "AUTO"
	default:
		return fmt.Sprintf("method(%d)", int(m))
	}
}

// Concrete reports whether m names an executable method (everything but
// MethodAuto).
func (m Method) Concrete() bool {
	return m == MethodNaive || m == MethodAffine || m == MethodIndex
}

// Kind is the logical query type.
type Kind int

const (
	// KindInterval is the unified interval query: the MET and MER queries of
	// Section 2.2 are its half-bounded and bounded instances.
	KindInterval Kind = iota
	// KindCompute is a measure computation (MEC) query.
	KindCompute
	// KindTopK is a top-k (MEK) query: the k pairs (or series) with the most
	// extreme measure values.
	KindTopK
)

// String names the query kind; out-of-range values render as a stable
// "unknown(N)" form.
func (k Kind) String() string {
	switch k {
	case KindInterval:
		return "INTERVAL"
	case KindCompute:
		return "MEC"
	case KindTopK:
		return "MEK"
	default:
		return fmt.Sprintf("unknown(%d)", int(k))
	}
}

// QuerySpec is the logical representation of one query: what is asked,
// independent of how it will be executed.
type QuerySpec struct {
	Kind    Kind
	Measure stats.Measure
	// Interval parameterizes an interval (MET/MER) query.
	Interval interval.Interval
	// K and Largest parameterize a top-k query: the k greatest (Largest) or
	// smallest measure values.
	K       int
	Largest bool
	// NumTargets is |ψ| of a compute query (the number of requested series).
	NumTargets int
}

// Interval builds the spec of an interval query: entries whose measure value
// lies in iv.
func Interval(m stats.Measure, iv interval.Interval) QuerySpec {
	return QuerySpec{Kind: KindInterval, Measure: m, Interval: iv}
}

// Threshold builds the spec of a MET query — sugar over Interval with the
// half-bounded open predicate (τ, +∞) or (−∞, τ).  Callers validate op
// (ThresholdOp.Valid) before converting.
func Threshold(m stats.Measure, tau float64, op scape.ThresholdOp) QuerySpec {
	return Interval(m, op.Interval(tau))
}

// Range builds the spec of a MER query — sugar over Interval with the closed
// predicate [lo, hi].
func Range(m stats.Measure, lo, hi float64) QuerySpec {
	return Interval(m, interval.Between(lo, hi))
}

// TopK builds the spec of a top-k (MEK) query: the k entries with the
// greatest (largest) or smallest measure values.
func TopK(m stats.Measure, k int, largest bool) QuerySpec {
	return QuerySpec{Kind: KindTopK, Measure: m, K: k, Largest: largest}
}

// Compute builds the spec of a MEC query over numTargets series.
func Compute(m stats.Measure, numTargets int) QuerySpec {
	return QuerySpec{Kind: KindCompute, Measure: m, NumTargets: numTargets}
}

// PairQuery converts an interval spec into the index's query form, used to
// obtain a selectivity estimate.
func (s QuerySpec) PairQuery() scape.PairQuery {
	return scape.PairQuery{Measure: s.Measure, Interval: s.Interval}
}

// String renders the spec the way the paper writes queries: half-bounded
// interval predicates as MET, bounded ones as MER.
func (s QuerySpec) String() string {
	switch s.Kind {
	case KindInterval:
		if s.Interval.Bounded() {
			return fmt.Sprintf("MER %v in %v", s.Measure, s.Interval)
		}
		return fmt.Sprintf("MET %v %v", s.Measure, s.Interval)
	case KindTopK:
		dir := "largest"
		if !s.Largest {
			dir = "smallest"
		}
		return fmt.Sprintf("MEK %v top-%d %s", s.Measure, s.K, dir)
	default:
		return fmt.Sprintf("MEC %v over %d series", s.Measure, s.NumTargets)
	}
}

// Plan is the planner's decision for one query: the chosen method, the
// per-method cost estimates that drove the choice, and — after execution
// through Engine.Explain — the observed actuals.
type Plan struct {
	Spec   QuerySpec
	Method Method

	// EstimatedRows is the expected result size (exact for T-/L-measure
	// index estimates, banded for D-measures, heuristic without an index).
	EstimatedRows int
	// Candidates is the number of exact evaluations an index scan would need
	// (the D-measure pruning band; for top-k, the expected best-first
	// examination count).
	Candidates int
	// SelectivityExact reports whether EstimatedRows came from an exact
	// subtree count rather than a band estimate or heuristic.
	SelectivityExact bool

	// EstimatedCost is the cost of the chosen method in the model's abstract
	// units; CostNaive/CostAffine/CostIndex are the per-method estimates
	// (+Inf for methods not applicable to this query).  CostSketch is the
	// price of the filter-and-refine prescreen the naive route executes
	// through on sketch-enabled epochs (+Inf when inapplicable); when finite
	// it IS the naive route's price, so CostNaive equals it.
	EstimatedCost float64
	CostNaive     float64
	CostAffine    float64
	CostIndex     float64
	CostSketch    float64

	// Actuals, filled by the executor when the query ran through Explain.
	ActualRows int
	Duration   time.Duration
	// CacheTier names the result-cache tier that served the query ("exact",
	// "contained" or "repaired"; empty when the query executed in full), so a
	// repeated Explain reports what actually happened instead of pretending a
	// cold run.  CacheRepairedPairs is the number of candidate pairs the delta
	// repair re-evaluated (zero outside the repaired tier).
	CacheTier          string
	CacheRepairedPairs int
	// SketchedPairs is the number of pairs the coefficient-sketch prescreen
	// classified for this query, and SketchRefinedPairs the number that
	// reached the exact kernels (ambiguous pairs of an interval sweep; pairs
	// in examined chunks of a best-first top-k sweep).  Zero when the query
	// did not execute through the sketch tier.
	SketchedPairs      int
	SketchRefinedPairs int
}

// String renders the plan for diagnostics and EXPLAIN-style output.
func (p Plan) String() string {
	s := fmt.Sprintf("%v → %v (est %d rows, cost %.3g; WN %.3g, WA %.3g, SCAPE %.3g)",
		p.Spec, p.Method, p.EstimatedRows, p.EstimatedCost,
		p.CostNaive, p.CostAffine, p.CostIndex)
	if p.CacheTier != "" {
		s += fmt.Sprintf(" [cache %s", p.CacheTier)
		if p.CacheRepairedPairs > 0 {
			s += fmt.Sprintf(", %d pairs repaired", p.CacheRepairedPairs)
		}
		s += "]"
	}
	if p.SketchedPairs > 0 {
		s += fmt.Sprintf(" [sketch %d pairs, %d refined]", p.SketchedPairs, p.SketchRefinedPairs)
	}
	return s
}
