package btree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmptyTree(t *testing.T) {
	tr := New[int]()
	if tr.Len() != 0 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if _, ok := tr.MinKey(); ok {
		t.Fatal("MinKey on empty tree should report false")
	}
	if _, ok := tr.MaxKey(); ok {
		t.Fatal("MaxKey on empty tree should report false")
	}
	count := 0
	tr.Ascend(func(float64, int) bool { count++; return true })
	if count != 0 {
		t.Fatal("Ascend on empty tree should visit nothing")
	}
	if tr.Height() != 1 {
		t.Fatalf("empty tree height = %d", tr.Height())
	}
}

func TestInsertAndAscendSorted(t *testing.T) {
	tr := New[int]()
	rng := rand.New(rand.NewSource(1))
	const n = 5000
	keys := make([]float64, n)
	for i := range keys {
		keys[i] = rng.NormFloat64() * 100
		tr.Insert(keys[i], i)
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d, want %d", tr.Len(), n)
	}

	var visited []float64
	tr.Ascend(func(k float64, _ int) bool {
		visited = append(visited, k)
		return true
	})
	if len(visited) != n {
		t.Fatalf("Ascend visited %d entries, want %d", len(visited), n)
	}
	if !sort.Float64sAreSorted(visited) {
		t.Fatal("Ascend output not sorted")
	}

	sort.Float64s(keys)
	for i := range keys {
		if keys[i] != visited[i] {
			t.Fatalf("key %d: %v != %v", i, visited[i], keys[i])
		}
	}

	minKey, ok := tr.MinKey()
	if !ok || minKey != keys[0] {
		t.Fatalf("MinKey = %v, want %v", minKey, keys[0])
	}
	maxKey, ok := tr.MaxKey()
	if !ok || maxKey != keys[n-1] {
		t.Fatalf("MaxKey = %v, want %v", maxKey, keys[n-1])
	}
	if tr.Height() < 2 {
		t.Fatalf("tree of %d keys should have split, height = %d", n, tr.Height())
	}
}

func TestDuplicateKeysPreserved(t *testing.T) {
	tr := New[string]()
	tr.Insert(1, "a")
	tr.Insert(1, "b")
	tr.Insert(1, "c")
	tr.Insert(0, "low")
	tr.Insert(2, "high")
	var got []string
	tr.AscendRange(1, 1, func(_ float64, v string) bool {
		got = append(got, v)
		return true
	})
	if len(got) != 3 {
		t.Fatalf("duplicate range returned %d values", len(got))
	}
	// Insertion order for equal keys.
	if got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("duplicate order = %v", got)
	}
}

func TestAscendGreaterOrEqual(t *testing.T) {
	tr := New[int]()
	for i := 0; i < 100; i++ {
		tr.Insert(float64(i), i)
	}
	var got []int
	tr.AscendGreaterOrEqual(90, func(_ float64, v int) bool {
		got = append(got, v)
		return true
	})
	if len(got) != 10 || got[0] != 90 || got[9] != 99 {
		t.Fatalf("AscendGreaterOrEqual(90) = %v", got)
	}
	// Threshold above every key.
	got = got[:0]
	tr.AscendGreaterOrEqual(1000, func(_ float64, v int) bool {
		got = append(got, v)
		return true
	})
	if len(got) != 0 {
		t.Fatalf("out-of-range threshold returned %v", got)
	}
	// Early termination.
	count := 0
	tr.AscendGreaterOrEqual(0, func(_ float64, _ int) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Fatalf("early termination visited %d", count)
	}
}

func TestAscendRangeAndCount(t *testing.T) {
	tr := New[int]()
	for i := 0; i < 1000; i++ {
		tr.Insert(float64(i%100), i)
	}
	if got := tr.CountRange(10, 19); got != 100 {
		t.Fatalf("CountRange(10,19) = %d, want 100", got)
	}
	if got := tr.CountRange(200, 300); got != 0 {
		t.Fatalf("CountRange out of range = %d", got)
	}
	if got := tr.CountRange(50, 10); got != 0 {
		t.Fatalf("inverted range = %d", got)
	}
	// Inclusive bounds.
	if got := tr.CountRange(5, 5); got != 10 {
		t.Fatalf("CountRange(5,5) = %d, want 10", got)
	}
}

func TestAscendLessThan(t *testing.T) {
	tr := New[int]()
	for i := 0; i < 50; i++ {
		tr.Insert(float64(i), i)
	}
	var got []int
	tr.AscendLessThan(5, func(_ float64, v int) bool {
		got = append(got, v)
		return true
	})
	if len(got) != 5 || got[4] != 4 {
		t.Fatalf("AscendLessThan(5) = %v", got)
	}
	count := 0
	tr.AscendLessThan(50, func(_ float64, _ int) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Fatalf("early termination visited %d", count)
	}
}

func TestAscendingInsertOrder(t *testing.T) {
	// Monotonically increasing inserts are the worst case for naive split
	// strategies; verify the tree stays consistent.
	tr := New[int]()
	const n = 10000
	for i := 0; i < n; i++ {
		tr.Insert(float64(i), i)
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d", tr.Len())
	}
	prev := -1.0
	count := 0
	tr.Ascend(func(k float64, v int) bool {
		if k < prev {
			t.Fatalf("out of order key %v after %v", k, prev)
		}
		if int(k) != v {
			t.Fatalf("value mismatch %v -> %d", k, v)
		}
		prev = k
		count++
		return true
	})
	if count != n {
		t.Fatalf("visited %d", count)
	}
}

func TestDescendingInsertOrder(t *testing.T) {
	tr := New[int]()
	const n = 3000
	for i := n - 1; i >= 0; i-- {
		tr.Insert(float64(i), i)
	}
	if got := tr.CountRange(0, float64(n)); got != n {
		t.Fatalf("CountRange = %d, want %d", got, n)
	}
}

// Property: for random inserts, a range scan returns exactly the entries a
// sorted reference slice would.
func TestRangeScanMatchesReferenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(500)
		tr := New[int]()
		keys := make([]float64, n)
		for i := 0; i < n; i++ {
			// Coarse keys so duplicates occur frequently.
			keys[i] = float64(rng.Intn(50))
			tr.Insert(keys[i], i)
		}
		lo := float64(rng.Intn(50)) - 5
		hi := lo + float64(rng.Intn(30))

		want := 0
		for _, k := range keys {
			if k >= lo && k <= hi {
				want++
			}
		}
		return tr.CountRange(lo, hi) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: the tree height stays logarithmic (well below a loose 4*log2(n)
// bound), i.e. splits actually rebalance.
func TestHeightLogarithmicProperty(t *testing.T) {
	tr := New[int]()
	const n = 20000
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < n; i++ {
		tr.Insert(rng.Float64(), i)
	}
	if h := tr.Height(); h > 6 {
		t.Fatalf("height %d too large for %d keys with order %d", h, n, defaultOrder)
	}
}
