package btree

import (
	"encoding/binary"
	"math"
	"sort"
	"testing"
)

// decodeKeys turns fuzz bytes into a bounded list of finite float64 keys.
// Values are folded into a modest range so duplicates (the interesting case
// for stable-tie scans) actually occur.
func decodeKeys(data []byte) []float64 {
	const maxKeys = 512
	var keys []float64
	for len(data) >= 8 && len(keys) < maxKeys {
		bits := binary.LittleEndian.Uint64(data[:8])
		data = data[8:]
		v := math.Float64frombits(bits)
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		// Fold into [-16, 16] and quantize to provoke duplicate keys.
		v = math.Mod(v, 16)
		v = math.Round(v*8) / 8
		keys = append(keys, v)
	}
	return keys
}

// oracleEntry mirrors a tree entry: key plus insertion index (the value),
// which doubles as the tie-break check because equal keys must scan in
// insertion order.
type oracleEntry struct {
	key float64
	seq int
}

// FuzzTreeVsSortedSliceOracle cross-checks every scan entry point of the
// B+-tree against a stable-sorted slice.
func FuzzTreeVsSortedSliceOracle(f *testing.F) {
	f.Add([]byte{})
	f.Add(mustBytes(1.0, 2.0, 3.0))
	f.Add(mustBytes(3.0, 2.0, 1.0, 2.0, 2.0, 2.0))
	f.Add(mustBytes(0.5, -0.5, 0.5, -0.5, 0, 0, 0))
	many := make([]float64, 200)
	for i := range many {
		many[i] = float64(i%17) - 8
	}
	f.Add(mustBytes(many...))

	f.Fuzz(func(t *testing.T, data []byte) {
		keys := decodeKeys(data)
		tree := New[int]()
		oracle := make([]oracleEntry, 0, len(keys))
		for i, k := range keys {
			tree.Insert(k, i)
			oracle = append(oracle, oracleEntry{key: k, seq: i})
		}
		sort.SliceStable(oracle, func(i, j int) bool { return oracle[i].key < oracle[j].key })

		if tree.Len() != len(oracle) {
			t.Fatalf("Len = %d, want %d", tree.Len(), len(oracle))
		}

		// Full ascend: exact order including ties.
		var got []oracleEntry
		tree.Ascend(func(k float64, v int) bool {
			got = append(got, oracleEntry{key: k, seq: v})
			return true
		})
		if len(got) != len(oracle) {
			t.Fatalf("Ascend visited %d entries, want %d", len(got), len(oracle))
		}
		for i := range got {
			if got[i] != oracle[i] {
				t.Fatalf("Ascend[%d] = %+v, want %+v", i, got[i], oracle[i])
			}
		}

		// Range scans from pivots drawn from the key set (plus off-key
		// probes in between).
		pivots := probePivots(keys)
		for _, p := range pivots {
			var ge []oracleEntry
			tree.AscendGreaterOrEqual(p, func(k float64, v int) bool {
				ge = append(ge, oracleEntry{key: k, seq: v})
				return true
			})
			var wantGE []oracleEntry
			for _, e := range oracle {
				if e.key >= p {
					wantGE = append(wantGE, e)
				}
			}
			assertSame(t, "AscendGreaterOrEqual", p, ge, wantGE)

			var lt []oracleEntry
			tree.AscendLessThan(p, func(k float64, v int) bool {
				lt = append(lt, oracleEntry{key: k, seq: v})
				return true
			})
			var wantLT []oracleEntry
			for _, e := range oracle {
				if e.key < p {
					wantLT = append(wantLT, e)
				}
			}
			assertSame(t, "AscendLessThan", p, lt, wantLT)

			// Subtree-count queries against the oracle.
			if got := tree.Rank(p); got != len(wantLT) {
				t.Fatalf("Rank(%v) = %d, want %d", p, got, len(wantLT))
			}
			wantGT := 0
			for _, e := range oracle {
				if e.key > p {
					wantGT++
				}
			}
			if got := tree.CountGreater(p); got != wantGT {
				t.Fatalf("CountGreater(%v) = %d, want %d", p, got, wantGT)
			}

			for _, q := range pivots {
				if q < p {
					continue
				}
				want := 0
				for _, e := range oracle {
					if e.key >= p && e.key <= q {
						want++
					}
				}
				if got := tree.CountRange(p, q); got != want {
					t.Fatalf("CountRange(%v, %v) = %d, want %d", p, q, got, want)
				}
				// Complement identity the decreasing-transform selectivity
				// estimate leans on: (entries ≤ q) − (entries < p) must count
				// the same closed band [p, q].
				if got := tree.Len() - tree.CountGreater(q) - tree.Rank(p); got != want {
					t.Fatalf("Len-CountGreater(%v)-Rank(%v) = %d, want %d", q, p, got, want)
				}
			}
		}

		// Min/Max keys.
		if len(oracle) > 0 {
			if k, ok := tree.MinKey(); !ok || k != oracle[0].key {
				t.Fatalf("MinKey = %v,%v want %v", k, ok, oracle[0].key)
			}
			if k, ok := tree.MaxKey(); !ok || k != oracle[len(oracle)-1].key {
				t.Fatalf("MaxKey = %v,%v want %v", k, ok, oracle[len(oracle)-1].key)
			}
		} else {
			if _, ok := tree.MinKey(); ok {
				t.Fatal("MinKey on empty tree reported ok")
			}
		}
	})
}

// probePivots returns a few scan pivots: existing keys and midpoints.
func probePivots(keys []float64) []float64 {
	const maxPivots = 8
	out := []float64{0}
	for i, k := range keys {
		if len(out) >= maxPivots {
			break
		}
		out = append(out, k)
		if i > 0 {
			out = append(out, (k+keys[i-1])/2)
		}
	}
	return out
}

func assertSame(t *testing.T, scan string, pivot float64, got, want []oracleEntry) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s(%v) visited %d entries, want %d", scan, pivot, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s(%v)[%d] = %+v, want %+v", scan, pivot, i, got[i], want[i])
		}
	}
}

// treeSnapshot pairs a cloned tree with the oracle state at clone time, so
// later mutations of the live tree can be checked for copy-on-write leaks.
type treeSnapshot struct {
	tree   *Tree[int]
	oracle []oracleEntry
}

// FuzzMutationsVsOracle drives an interleaved stream of Insert/Delete/Clone
// operations decoded from the fuzz input and cross-checks scan order, rank
// and count queries, structural invariants, and clone isolation against a
// sorted-slice oracle.
func FuzzMutationsVsOracle(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 0, 1, 12, 1, 0, 2, 17, 0, 0, 3, 13, 2})
	// Insert a pile of duplicates, clone, then drain.
	seed := make([]byte, 0, 128)
	for i := 0; i < 24; i++ {
		seed = append(seed, 0, byte(i%5))
	}
	seed = append(seed, 17, 0)
	for i := 0; i < 20; i++ {
		seed = append(seed, 12, byte(i%5))
	}
	f.Add(seed)

	f.Fuzz(func(t *testing.T, data []byte) {
		const maxOps = 256
		tree := New[int]()
		var oracle []oracleEntry
		var snaps []treeSnapshot
		seq := 0
		ops := 0

		for len(data) >= 2 && ops < maxOps {
			op, kb := data[0], data[1]
			data = data[2:]
			ops++
			// Fold the key byte into 33 buckets over [-8, 8] so duplicates
			// are common.
			key := float64(int(kb)%33-16) / 2

			switch {
			case op%20 < 12: // insert
				tree.Insert(key, seq)
				pos := len(oracle)
				for pos > 0 && oracle[pos-1].key > key {
					pos--
				}
				oracle = append(oracle, oracleEntry{})
				copy(oracle[pos+1:], oracle[pos:])
				oracle[pos] = oracleEntry{key: key, seq: seq}
				seq++
			case op%20 < 17: // delete one entry among the key's duplicates
				var dups []int
				for i, e := range oracle {
					if e.key == key {
						dups = append(dups, i)
					}
				}
				if len(dups) == 0 {
					if tree.Delete(key, func(int) bool { return true }) {
						t.Fatalf("Delete(%v) succeeded on absent key", key)
					}
					continue
				}
				target := dups[int(op/20)%len(dups)]
				want := oracle[target].seq
				if !tree.Delete(key, func(v int) bool { return v == want }) {
					t.Fatalf("Delete(%v, seq=%d) failed", key, want)
				}
				oracle = append(oracle[:target], oracle[target+1:]...)
			default: // clone; alternate which side stays live
				cl := tree.Clone()
				frozen := cl
				if op%2 == 0 {
					frozen, tree = tree, cl
				}
				if len(snaps) < 8 {
					snaps = append(snaps, treeSnapshot{
						tree:   frozen,
						oracle: append([]oracleEntry(nil), oracle...),
					})
				}
			}
		}

		verify := func(label string, tr *Tree[int], want []oracleEntry) {
			var got []oracleEntry
			tr.Ascend(func(k float64, v int) bool {
				got = append(got, oracleEntry{key: k, seq: v})
				return true
			})
			assertSame(t, label, 0, got, want)
			if tr.Len() != len(want) {
				t.Fatalf("%s: Len = %d, want %d", label, tr.Len(), len(want))
			}
			checkInvariants(t, tr)
			for _, p := range []float64{-8.5, -3, 0, 0.5, 4, 8.5} {
				wantLT, wantGT := 0, 0
				for _, e := range want {
					if e.key < p {
						wantLT++
					}
					if e.key > p {
						wantGT++
					}
				}
				if got := tr.Rank(p); got != wantLT {
					t.Fatalf("%s: Rank(%v) = %d, want %d", label, p, got, wantLT)
				}
				if got := tr.CountGreater(p); got != wantGT {
					t.Fatalf("%s: CountGreater(%v) = %d, want %d", label, p, got, wantGT)
				}
				wantRange := 0
				for _, e := range want {
					if e.key >= p && e.key <= p+3 {
						wantRange++
					}
				}
				if got := tr.CountRange(p, p+3); got != wantRange {
					t.Fatalf("%s: CountRange(%v, %v) = %d, want %d", label, p, p+3, got, wantRange)
				}
			}
		}

		verify("live tree", tree, oracle)
		for _, s := range snaps {
			verify("snapshot", s.tree, s.oracle)
		}
	})
}

func mustBytes(values ...float64) []byte {
	out := make([]byte, 0, len(values)*8)
	for _, v := range values {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
		out = append(out, b[:]...)
	}
	return out
}
