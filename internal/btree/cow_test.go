package btree

import (
	"math/rand"
	"sort"
	"testing"
)

// checkInvariants walks the whole tree and verifies the structural invariants
// delete rebalancing and copy-on-write must preserve: per-node key ordering,
// separator bounds, subtree totals, fill floor/ceiling, and uniform leaf
// depth.
func checkInvariants[V any](t *testing.T, tr *Tree[V]) {
	t.Helper()
	leafDepth := -1
	var walk func(n *node[V], depth int, root bool, min, max float64, hasMin, hasMax bool) int
	walk = func(n *node[V], depth int, root bool, min, max float64, hasMin, hasMax bool) int {
		t.Helper()
		for i := 1; i < len(n.keys); i++ {
			if n.keys[i] < n.keys[i-1] {
				t.Fatalf("node keys out of order: %v", n.keys)
			}
		}
		if len(n.keys) > tr.order {
			t.Fatalf("node overfull: %d keys > order %d", len(n.keys), tr.order)
		}
		if !root && len(n.keys) < tr.minItems() {
			t.Fatalf("non-root node underfull: %d keys < floor %d", len(n.keys), tr.minItems())
		}
		if n.leaf() {
			if len(n.values) != len(n.keys) {
				t.Fatalf("leaf has %d values for %d keys", len(n.values), len(n.keys))
			}
			for _, k := range n.keys {
				if hasMin && k < min {
					t.Fatalf("leaf key %v below separator bound %v", k, min)
				}
				if hasMax && k > max {
					t.Fatalf("leaf key %v above separator bound %v", k, max)
				}
			}
			if leafDepth == -1 {
				leafDepth = depth
			} else if depth != leafDepth {
				t.Fatalf("leaf at depth %d, expected %d", depth, leafDepth)
			}
			if n.total != len(n.keys) {
				t.Fatalf("leaf total %d, want %d", n.total, len(n.keys))
			}
			return n.total
		}
		if len(n.children) != len(n.keys)+1 {
			t.Fatalf("internal node has %d children for %d keys", len(n.children), len(n.keys))
		}
		sum := 0
		for i, c := range n.children {
			cmin, cmax := min, max
			cHasMin, cHasMax := hasMin, hasMax
			if i > 0 {
				cmin, cHasMin = n.keys[i-1], true
			}
			if i < len(n.keys) {
				cmax, cHasMax = n.keys[i], true
			}
			sum += walk(c, depth+1, false, cmin, cmax, cHasMin, cHasMax)
		}
		if n.total != sum {
			t.Fatalf("internal total %d, want %d", n.total, sum)
		}
		return sum
	}
	total := walk(tr.root, 0, true, 0, 0, false, false)
	if total != tr.size {
		t.Fatalf("tree size %d, root total %d", tr.size, total)
	}
}

// collect returns the tree's entries in scan order.
func collect(tr *Tree[int]) []oracleEntry {
	var out []oracleEntry
	tr.Ascend(func(k float64, v int) bool {
		out = append(out, oracleEntry{key: k, seq: v})
		return true
	})
	return out
}

func assertEntries(t *testing.T, label string, tr *Tree[int], want []oracleEntry) {
	t.Helper()
	got := collect(tr)
	if len(got) != len(want) {
		t.Fatalf("%s: %d entries, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: entry %d = %+v, want %+v", label, i, got[i], want[i])
		}
	}
	if tr.Len() != len(want) {
		t.Fatalf("%s: Len = %d, want %d", label, tr.Len(), len(want))
	}
}

func TestDeleteAcrossRebalances(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 5000
	tr := New[int]()
	oracle := make([]oracleEntry, 0, n)
	perm := rng.Perm(n)
	for i, p := range perm {
		k := float64(p % 97) // heavy duplicate pressure
		tr.Insert(k, i)
		oracle = append(oracle, oracleEntry{key: k, seq: i})
	}
	sort.SliceStable(oracle, func(i, j int) bool { return oracle[i].key < oracle[j].key })
	checkInvariants(t, tr)

	for len(oracle) > 0 {
		i := rng.Intn(len(oracle))
		e := oracle[i]
		if !tr.Delete(e.key, func(v int) bool { return v == e.seq }) {
			t.Fatalf("Delete(%v, seq=%d) reported missing", e.key, e.seq)
		}
		oracle = append(oracle[:i], oracle[i+1:]...)
		if len(oracle)%500 == 0 {
			checkInvariants(t, tr)
			assertEntries(t, "after deletes", tr, oracle)
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d after deleting everything", tr.Len())
	}
	if _, ok := tr.MinKey(); ok {
		t.Fatal("MinKey reported ok on emptied tree")
	}
	// The emptied tree must remain usable.
	tr.Insert(1, 1)
	tr.Insert(0, 2)
	assertEntries(t, "reuse after drain", tr, []oracleEntry{{0, 2}, {1, 1}})
}

func TestDeleteMissingAndDuplicateSelection(t *testing.T) {
	tr := New[int]()
	for i := 0; i < 5; i++ {
		tr.Insert(2, i)
	}
	tr.Insert(1, 100)
	tr.Insert(3, 200)

	if tr.Delete(2.5, func(int) bool { return true }) {
		t.Fatal("Delete of absent key reported success")
	}
	if tr.Delete(2, func(v int) bool { return v == 99 }) {
		t.Fatal("Delete with never-matching predicate reported success")
	}
	// Remove the middle duplicate; the others keep insertion order.
	if !tr.Delete(2, func(v int) bool { return v == 2 }) {
		t.Fatal("Delete of middle duplicate failed")
	}
	assertEntries(t, "after duplicate delete", tr,
		[]oracleEntry{{1, 100}, {2, 0}, {2, 1}, {2, 3}, {2, 4}, {3, 200}})
	if got := tr.CountRange(2, 2); got != 4 {
		t.Fatalf("CountRange(2,2) = %d, want 4", got)
	}
}

func TestCloneIsolation(t *testing.T) {
	tr := New[int]()
	var base []oracleEntry
	for i := 0; i < 2000; i++ {
		k := float64(i % 53)
		tr.Insert(k, i)
		base = append(base, oracleEntry{key: k, seq: i})
	}
	sort.SliceStable(base, func(i, j int) bool { return base[i].key < base[j].key })

	cl := tr.Clone()
	assertEntries(t, "clone right after Clone", cl, base)

	// Diverge both sides.
	origOracle := append([]oracleEntry(nil), base...)
	for i := 0; i < 500; i++ {
		e := origOracle[0]
		if !tr.Delete(e.key, func(v int) bool { return v == e.seq }) {
			t.Fatalf("original delete %+v failed", e)
		}
		origOracle = origOracle[1:]
	}
	tr.Insert(-1, 9999)
	origOracle = append([]oracleEntry{{-1, 9999}}, origOracle...)

	cloneOracle := append([]oracleEntry(nil), base...)
	for i := 0; i < 300; i++ {
		e := cloneOracle[len(cloneOracle)-1]
		if !cl.Delete(e.key, func(v int) bool { return v == e.seq }) {
			t.Fatalf("clone delete %+v failed", e)
		}
		cloneOracle = cloneOracle[:len(cloneOracle)-1]
	}
	cl.Insert(100, 8888)
	cloneOracle = append(cloneOracle, oracleEntry{100, 8888})

	assertEntries(t, "original after divergence", tr, origOracle)
	assertEntries(t, "clone after divergence", cl, cloneOracle)
	checkInvariants(t, tr)
	checkInvariants(t, cl)

	// A clone of a clone keeps sharing safely.
	cl2 := cl.Clone()
	cl2.Insert(50, 7777)
	assertEntries(t, "clone after grandclone mutated", cl, cloneOracle)
	checkInvariants(t, cl2)
}

func TestFromSortedMatchesInsertBuilt(t *testing.T) {
	for _, n := range []int{0, 1, 15, 31, 32, 33, 64, 100, 1056, 5000} {
		keys := make([]float64, n)
		values := make([]int, n)
		for i := range keys {
			keys[i] = float64(i / 3) // runs of duplicates
			values[i] = i
		}
		bulk := FromSorted(keys, values)
		ref := New[int]()
		for i := range keys {
			ref.Insert(keys[i], values[i])
		}
		assertEntries(t, "FromSorted", bulk, collect(ref))
		checkInvariants(t, bulk)
		if n > 0 {
			if got := bulk.Rank(keys[n/2]); got != ref.Rank(keys[n/2]) {
				t.Fatalf("n=%d: Rank mismatch %d vs %d", n, got, ref.Rank(keys[n/2]))
			}
		}
		// Bulk-loaded trees must accept mutations.
		if n >= 32 {
			if !bulk.Delete(keys[0], func(v int) bool { return v == values[0] }) {
				t.Fatalf("n=%d: delete from bulk-loaded tree failed", n)
			}
			bulk.Insert(keys[0], values[0])
			checkInvariants(t, bulk)
		}
	}
}

func TestFromSortedRejectsBadInput(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("unsorted keys", func() { FromSorted([]float64{2, 1}, []int{0, 1}) })
	mustPanic("length mismatch", func() { FromSorted([]float64{1}, []int{0, 1}) })
}
