// Package btree provides an in-memory B+-tree keyed by float64 with support
// for duplicate keys, ordered range scans, O(log n) rank/count queries,
// deletion with rebalancing, and copy-on-write clones.
//
// The SCAPE index (Section 5 of the paper) stores, per pivot pair, a "sorted
// container, like a B-tree" of sequence nodes keyed by their scalar
// projection ξ.  Threshold and range queries then translate into key-range
// scans over these containers.  This package is that sorted container.
//
// Clone produces a second tree sharing every node with the original;
// mutations on either side copy only the touched root-to-leaf path, so the
// streaming engine can delta-build the next epoch's containers while
// concurrent readers keep scanning the previous epoch untouched
// (persistent-tree-style structural sharing).
package btree

import "sort"

// defaultOrder is the maximum number of keys per node.  32 keeps nodes within
// a cache line or two while giving a branching factor high enough that trees
// over hundreds of thousands of relationships stay shallow.
const defaultOrder = 32

// cowTag identifies the owner of a node.  A node is mutable by a tree only
// when their tags match; Clone hands out fresh tags, so every node that
// existed before the clone is treated as shared (and copied on first write)
// by both trees.
type cowTag struct{ _ byte }

// node is one B+-tree node.  Leaves carry the entries (keys aligned with
// values); internal nodes carry separator keys and children, with
// len(children) == len(keys)+1 and keys[i] satisfying
// max(children[i]) <= keys[i] <= min(children[i+1]).  Separators may go stale
// after deletions (the separated key may no longer exist) without breaking
// that ordering invariant, which is all the descent logic relies on.
type node[V any] struct {
	keys     []float64
	values   []V        // leaves only
	children []*node[V] // empty for leaves
	// total is the number of entries stored in the subtree, maintained on
	// every mutation so rank/count queries run in O(log n).
	total int
	cow   *cowTag
}

func (n *node[V]) leaf() bool { return len(n.children) == 0 }

// Tree is a B+-tree mapping float64 keys to values of type V.  Duplicate keys
// are allowed; values with equal keys are returned in insertion order during
// scans.  The zero value is not usable; call New.
type Tree[V any] struct {
	root  *node[V]
	size  int
	order int
	cow   *cowTag
}

// New returns an empty tree.
func New[V any]() *Tree[V] {
	cow := &cowTag{}
	return &Tree[V]{root: &node[V]{cow: cow}, order: defaultOrder, cow: cow}
}

// Len returns the number of stored entries.
func (t *Tree[V]) Len() int { return t.size }

// Clone returns a copy of the tree sharing every node with the receiver.
// Both trees remain fully usable: the first mutation of a shared node on
// either side copies just that node (path copying), so a clone is O(1) and
// the memory cost of divergence is proportional to the paths actually
// touched.  Readers of one tree are never affected by writes to the other.
func (t *Tree[V]) Clone() *Tree[V] {
	// Hand both trees fresh tags: every currently reachable node keeps the
	// old tag and is therefore treated as shared by both sides.
	t.cow = &cowTag{}
	return &Tree[V]{root: t.root, size: t.size, order: t.order, cow: &cowTag{}}
}

// mutable returns n if the tree owns it, or an owned copy otherwise.
func (t *Tree[V]) mutable(n *node[V]) *node[V] {
	if n.cow == t.cow {
		return n
	}
	cp := &node[V]{total: n.total, cow: t.cow}
	cp.keys = make([]float64, len(n.keys), t.order+1)
	copy(cp.keys, n.keys)
	if n.leaf() {
		cp.values = make([]V, len(n.values), t.order+1)
		copy(cp.values, n.values)
	} else {
		cp.children = make([]*node[V], len(n.children), t.order+2)
		copy(cp.children, n.children)
	}
	return cp
}

// mutableChild makes child i of the (already owned) parent mutable, storing
// the copy back into the parent.
func (t *Tree[V]) mutableChild(parent *node[V], i int) *node[V] {
	c := t.mutable(parent.children[i])
	parent.children[i] = c
	return c
}

// Insert adds an entry to the tree.  Equal keys keep insertion order in every
// scan.
func (t *Tree[V]) Insert(key float64, value V) {
	t.root = t.mutable(t.root)
	sep, right := t.insertInto(t.root, key, value)
	if right != nil {
		t.root = &node[V]{
			keys:     append(make([]float64, 0, t.order+1), sep),
			children: append(make([]*node[V], 0, t.order+2), t.root, right),
			total:    t.root.total + right.total,
			cow:      t.cow,
		}
	}
	t.size++
}

// insertInto adds the entry below n (which must be owned by t) and reports a
// split: a non-nil right sibling with sepKey separating n from it.
func (t *Tree[V]) insertInto(n *node[V], key float64, value V) (sepKey float64, right *node[V]) {
	if n.leaf() {
		// Position after any existing equal keys to keep insertion order
		// stable.
		pos := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] > key })
		n.keys = append(n.keys, 0)
		copy(n.keys[pos+1:], n.keys[pos:])
		n.keys[pos] = key
		var zero V
		n.values = append(n.values, zero)
		copy(n.values[pos+1:], n.values[pos:])
		n.values[pos] = value
		n.total++
		if len(n.keys) <= t.order {
			return 0, nil
		}
		// Split in half; the right sibling takes the upper half.
		mid := len(n.keys) / 2
		r := &node[V]{
			keys:   append(make([]float64, 0, t.order+1), n.keys[mid:]...),
			values: append(make([]V, 0, t.order+1), n.values[mid:]...),
			cow:    t.cow,
		}
		r.total = len(r.keys)
		n.keys = n.keys[:mid]
		n.values = n.values[:mid]
		n.total = mid
		return r.keys[0], r
	}

	// Descend right of any separator equal to the key so duplicates append
	// after their equals.
	idx := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] > key })
	child := t.mutableChild(n, idx)
	sep, r := t.insertInto(child, key, value)
	n.total++
	if r == nil {
		return 0, nil
	}
	// Insert the separator and the new child after position idx.
	n.keys = append(n.keys, 0)
	copy(n.keys[idx+1:], n.keys[idx:])
	n.keys[idx] = sep
	n.children = append(n.children, nil)
	copy(n.children[idx+2:], n.children[idx+1:])
	n.children[idx+1] = r

	if len(n.keys) <= t.order {
		return 0, nil
	}
	// Split the internal node; the middle key is promoted.
	mid := len(n.keys) / 2
	promoted := n.keys[mid]
	sib := &node[V]{
		keys:     append(make([]float64, 0, t.order+1), n.keys[mid+1:]...),
		children: append(make([]*node[V], 0, t.order+2), n.children[mid+1:]...),
		cow:      t.cow,
	}
	for _, c := range sib.children {
		sib.total += c.total
	}
	n.keys = n.keys[:mid]
	n.children = n.children[:mid+1]
	n.total -= sib.total
	return promoted, sib
}

// minItems is the fill floor delete rebalancing restores for non-root nodes.
func (t *Tree[V]) minItems() int { return t.order / 2 }

// Delete removes the first entry (in scan order) whose key equals key and
// whose value satisfies match, and reports whether one was removed.  The
// traversal inspects only the duplicates of that exact key, so the total cost
// is O(log n + duplicates); the structural removal itself is O(log n) with
// borrow/merge rebalancing, and subtree counts stay exact.
func (t *Tree[V]) Delete(key float64, match func(V) bool) bool {
	pos := -1
	off := t.Rank(key)
	i := 0
	t.AscendGreaterOrEqual(key, func(k float64, v V) bool {
		if k != key {
			return false
		}
		if match(v) {
			pos = off + i
			return false
		}
		i++
		return true
	})
	if pos < 0 {
		return false
	}
	t.deleteAt(pos)
	return true
}

// deleteAt removes the entry at global index i (0-based, in scan order).
func (t *Tree[V]) deleteAt(i int) {
	t.root = t.mutable(t.root)
	t.removeAt(t.root, i)
	if !t.root.leaf() && len(t.root.children) == 1 {
		// The root lost its last separator: collapse one level.
		t.root = t.root.children[0]
	}
	t.size--
}

// removeAt removes the i-th entry of the subtree rooted at n (owned by t),
// rebalancing children that underflow.
func (t *Tree[V]) removeAt(n *node[V], i int) {
	if n.leaf() {
		n.keys = append(n.keys[:i], n.keys[i+1:]...)
		n.values = append(n.values[:i], n.values[i+1:]...)
		n.total--
		return
	}
	j := 0
	for ; j < len(n.children); j++ {
		c := n.children[j].total
		if i < c {
			break
		}
		i -= c
	}
	child := t.mutableChild(n, j)
	t.removeAt(child, i)
	n.total--
	if len(child.keys) < t.minItems() {
		t.rebalance(n, j)
	}
}

// rebalance restores the fill floor of child j of n by borrowing from a
// sibling with spare entries, or merging with a sibling otherwise.  Separator
// keys are refreshed to the exact boundary on every move, preserving the
// ordering invariant max(left) <= sep <= min(right).
func (t *Tree[V]) rebalance(n *node[V], j int) {
	child := n.children[j] // already owned by removeAt
	if j > 0 && len(n.children[j-1].keys) > t.minItems() {
		left := t.mutableChild(n, j-1)
		if child.leaf() {
			last := len(left.keys) - 1
			child.keys = append(child.keys, 0)
			copy(child.keys[1:], child.keys)
			child.keys[0] = left.keys[last]
			child.values = append(child.values, child.values[0])
			copy(child.values[1:], child.values)
			child.values[0] = left.values[last]
			left.keys = left.keys[:last]
			left.values = left.values[:last]
			child.total++
			left.total--
			n.keys[j-1] = child.keys[0]
			return
		}
		// Rotate through the parent: the old separator moves down in front of
		// the child's keys, the left sibling's last key moves up.
		lastK := len(left.keys) - 1
		lastC := len(left.children) - 1
		moved := left.children[lastC]
		child.keys = append(child.keys, 0)
		copy(child.keys[1:], child.keys)
		child.keys[0] = n.keys[j-1]
		child.children = append(child.children, nil)
		copy(child.children[1:], child.children)
		child.children[0] = moved
		n.keys[j-1] = left.keys[lastK]
		left.keys = left.keys[:lastK]
		left.children = left.children[:lastC]
		child.total += moved.total
		left.total -= moved.total
		return
	}
	if j < len(n.children)-1 && len(n.children[j+1].keys) > t.minItems() {
		right := t.mutableChild(n, j+1)
		if child.leaf() {
			child.keys = append(child.keys, right.keys[0])
			child.values = append(child.values, right.values[0])
			right.keys = append(right.keys[:0], right.keys[1:]...)
			right.values = append(right.values[:0], right.values[1:]...)
			child.total++
			right.total--
			n.keys[j] = right.keys[0]
			return
		}
		moved := right.children[0]
		child.keys = append(child.keys, n.keys[j])
		child.children = append(child.children, moved)
		n.keys[j] = right.keys[0]
		right.keys = append(right.keys[:0], right.keys[1:]...)
		right.children = append(right.children[:0], right.children[1:]...)
		child.total += moved.total
		right.total -= moved.total
		return
	}
	// Merge with a sibling (both at the floor): fold the right member of the
	// pair into the left and drop the separator.
	if j > 0 {
		j--
	}
	left := t.mutableChild(n, j)
	right := t.mutableChild(n, j+1)
	if left.leaf() {
		left.keys = append(left.keys, right.keys...)
		left.values = append(left.values, right.values...)
	} else {
		left.keys = append(left.keys, n.keys[j])
		left.keys = append(left.keys, right.keys...)
		left.children = append(left.children, right.children...)
	}
	left.total += right.total
	n.keys = append(n.keys[:j], n.keys[j+1:]...)
	n.children = append(n.children[:j+1], n.children[j+2:]...)
}

// FromSorted builds a tree in O(n) from entries whose keys are already in
// non-decreasing order (entries with equal keys keep slice order, exactly as
// if inserted sequentially).  The slices are copied; keys and values must
// have equal length.  It panics when the keys are out of order.
func FromSorted[V any](keys []float64, values []V) *Tree[V] {
	if len(keys) != len(values) {
		panic("btree: FromSorted slices of unequal length")
	}
	t := New[V]()
	if len(keys) == 0 {
		return t
	}
	for i := 1; i < len(keys); i++ {
		if keys[i] < keys[i-1] {
			panic("btree: FromSorted keys out of order")
		}
	}
	// Leaf level: full chunks, with the final two chunks balanced so no leaf
	// sits below the delete-rebalancing floor.
	var level []*node[V]
	n := len(keys)
	for lo := 0; lo < n; {
		hi := lo + t.order
		if hi > n {
			hi = n
		}
		if rem := n - hi; rem > 0 && rem < t.minItems() {
			// Shrink this chunk so the remainder reaches the floor.
			hi = n - t.minItems()
		}
		lf := &node[V]{
			keys:   append(make([]float64, 0, t.order+1), keys[lo:hi]...),
			values: append(make([]V, 0, t.order+1), values[lo:hi]...),
			total:  hi - lo,
			cow:    t.cow,
		}
		level = append(level, lf)
		lo = hi
	}
	// Internal levels: group children, separator = min key of the right
	// member of each adjacent pair (the first key of its leftmost leaf).
	for len(level) > 1 {
		var next []*node[V]
		fanout := t.order + 1
		minChild := t.minItems() + 1
		for lo := 0; lo < len(level); {
			hi := lo + fanout
			if hi > len(level) {
				hi = len(level)
			}
			if rem := len(level) - hi; rem > 0 && rem < minChild {
				hi = len(level) - minChild
			}
			in := &node[V]{
				children: append(make([]*node[V], 0, t.order+2), level[lo:hi]...),
				cow:      t.cow,
			}
			in.keys = make([]float64, 0, t.order+1)
			for k := lo + 1; k < hi; k++ {
				in.keys = append(in.keys, minKeyOf(level[k]))
			}
			for _, c := range in.children {
				in.total += c.total
			}
			next = append(next, in)
			lo = hi
		}
		level = next
	}
	t.root = level[0]
	t.size = n
	return t
}

// minKeyOf returns the smallest key of a non-empty subtree.
func minKeyOf[V any](n *node[V]) float64 {
	for !n.leaf() {
		n = n.children[0]
	}
	return n.keys[0]
}

// Ascend visits every entry in non-decreasing key order until fn returns
// false.
func (t *Tree[V]) Ascend(fn func(key float64, value V) bool) {
	ascendAll(t.root, fn)
}

func ascendAll[V any](n *node[V], fn func(key float64, value V) bool) bool {
	if n.leaf() {
		for i := range n.keys {
			if !fn(n.keys[i], n.values[i]) {
				return false
			}
		}
		return true
	}
	for _, c := range n.children {
		if !ascendAll(c, fn) {
			return false
		}
	}
	return true
}

// AscendGreaterOrEqual visits entries with key >= pivot in non-decreasing key
// order until fn returns false.
func (t *Tree[V]) AscendGreaterOrEqual(pivot float64, fn func(key float64, value V) bool) {
	ascendGE(t.root, pivot, fn)
}

func ascendGE[V any](n *node[V], pivot float64, fn func(key float64, value V) bool) bool {
	if n.leaf() {
		pos := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] >= pivot })
		for i := pos; i < len(n.keys); i++ {
			if !fn(n.keys[i], n.values[i]) {
				return false
			}
		}
		return true
	}
	// Children left of the first separator >= pivot hold only smaller keys;
	// the descent child may straddle the pivot; everything right of it is
	// entirely >= pivot.
	idx := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] >= pivot })
	if !ascendGE(n.children[idx], pivot, fn) {
		return false
	}
	for _, c := range n.children[idx+1:] {
		if !ascendAll(c, fn) {
			return false
		}
	}
	return true
}

// AscendRange visits entries with min <= key <= max in non-decreasing key
// order until fn returns false.
func (t *Tree[V]) AscendRange(min, max float64, fn func(key float64, value V) bool) {
	if min > max {
		return
	}
	t.AscendGreaterOrEqual(min, func(key float64, value V) bool {
		if key > max {
			return false
		}
		return fn(key, value)
	})
}

// AscendLessThan visits entries with key < pivot in non-decreasing key order
// until fn returns false.
func (t *Tree[V]) AscendLessThan(pivot float64, fn func(key float64, value V) bool) {
	t.Ascend(func(key float64, value V) bool {
		if key >= pivot {
			return false
		}
		return fn(key, value)
	})
}

// Rank returns the number of entries with key strictly less than key, in
// O(log n) using the per-node subtree counts.
func (t *Tree[V]) Rank(key float64) int { return rankLess(t.root, key) }

func rankLess[V any](n *node[V], key float64) int {
	if n.leaf() {
		return sort.Search(len(n.keys), func(i int) bool { return n.keys[i] >= key })
	}
	idx := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] >= key })
	r := 0
	for _, c := range n.children[:idx] {
		r += c.total
	}
	return r + rankLess(n.children[idx], key)
}

// CountGreater returns the number of entries with key strictly greater than
// key, in O(log n).
func (t *Tree[V]) CountGreater(key float64) int { return t.size - countLE(t.root, key) }

func countLE[V any](n *node[V], key float64) int {
	if n.leaf() {
		return sort.Search(len(n.keys), func(i int) bool { return n.keys[i] > key })
	}
	idx := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] > key })
	c := 0
	for _, ch := range n.children[:idx] {
		c += ch.total
	}
	return c + countLE(n.children[idx], key)
}

// CountRange returns the number of entries with min <= key <= max, in
// O(log n) using the per-node subtree counts.
func (t *Tree[V]) CountRange(min, max float64) int {
	if min > max {
		return 0
	}
	return countLE(t.root, max) - rankLess(t.root, min)
}

// MinKey returns the smallest key and false when the tree is empty.
func (t *Tree[V]) MinKey() (float64, bool) {
	if t.size == 0 {
		return 0, false
	}
	return minKeyOf(t.root), true
}

// MaxKey returns the largest key and false when the tree is empty.
func (t *Tree[V]) MaxKey() (float64, bool) {
	if t.size == 0 {
		return 0, false
	}
	n := t.root
	for !n.leaf() {
		n = n.children[len(n.children)-1]
	}
	return n.keys[len(n.keys)-1], true
}

// Height returns the number of levels in the tree (1 for a single leaf),
// useful in tests and diagnostics.
func (t *Tree[V]) Height() int {
	h := 1
	n := t.root
	for !n.leaf() {
		h++
		n = n.children[0]
	}
	return h
}
