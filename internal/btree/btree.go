// Package btree provides an in-memory B+-tree keyed by float64 with support
// for duplicate keys and ordered range scans.
//
// The SCAPE index (Section 5 of the paper) stores, per pivot pair, a "sorted
// container, like a B-tree" of sequence nodes keyed by their scalar
// projection ξ.  Threshold and range queries then translate into key-range
// scans over these containers.  This package is that sorted container: leaf
// nodes are linked so an in-order scan touches only the leaves inside the
// requested key range plus O(log n) descent nodes.
package btree

import "sort"

// defaultOrder is the maximum number of keys per node.  32 keeps nodes within
// a cache line or two while giving a branching factor high enough that trees
// over hundreds of thousands of relationships stay shallow.
const defaultOrder = 32

// Tree is a B+-tree mapping float64 keys to values of type V.  Duplicate keys
// are allowed; values with equal keys are returned in insertion order during
// scans.  The zero value is not usable; call New.
type Tree[V any] struct {
	root  node[V]
	first *leaf[V] // leftmost leaf, head of the leaf chain
	size  int
	order int
}

// New returns an empty tree.
func New[V any]() *Tree[V] {
	lf := &leaf[V]{}
	return &Tree[V]{root: lf, first: lf, order: defaultOrder}
}

// Len returns the number of stored entries.
func (t *Tree[V]) Len() int { return t.size }

type node[V any] interface {
	// insert adds the entry and reports a split: when split is true, right is
	// the newly created sibling and sepKey separates the receiver (left) from
	// it.
	insert(key float64, value V, order int) (sepKey float64, right node[V], split bool)
	// firstLeafGE returns the leaf that may contain the first key >= key and
	// the index of that key within the leaf.
	firstLeafGE(key float64) (*leaf[V], int)
	minKey() float64
	// count returns the number of entries in the subtree (O(1): leaves count
	// their keys, internal nodes carry a maintained total).
	count() int
	// rankLess returns the number of subtree entries with key strictly less
	// than key, descending one child per level.
	rankLess(key float64) int
	// countLE returns the number of subtree entries with key <= key.
	countLE(key float64) int
}

type leaf[V any] struct {
	keys   []float64
	values []V
	next   *leaf[V]
}

type internal[V any] struct {
	// keys[i] is the smallest key reachable under children[i+1].
	keys     []float64
	children []node[V]
	// total is the number of entries stored below this node, maintained on
	// every insert and split so rank/count queries run in O(log n).
	total int
}

// Insert adds an entry to the tree.
func (t *Tree[V]) Insert(key float64, value V) {
	sep, right, split := t.root.insert(key, value, t.order)
	if split {
		newRoot := &internal[V]{
			keys:     []float64{sep},
			children: []node[V]{t.root, right},
			total:    t.root.count() + right.count(),
		}
		t.root = newRoot
	}
	t.size++
}

func (l *leaf[V]) minKey() float64 {
	if len(l.keys) == 0 {
		return 0
	}
	return l.keys[0]
}

func (n *internal[V]) minKey() float64 { return n.children[0].minKey() }

func (l *leaf[V]) insert(key float64, value V, order int) (float64, node[V], bool) {
	// Position after any existing equal keys to keep insertion order stable.
	pos := sort.Search(len(l.keys), func(i int) bool { return l.keys[i] > key })
	l.keys = append(l.keys, 0)
	copy(l.keys[pos+1:], l.keys[pos:])
	l.keys[pos] = key
	var zero V
	l.values = append(l.values, zero)
	copy(l.values[pos+1:], l.values[pos:])
	l.values[pos] = value

	if len(l.keys) <= order {
		return 0, nil, false
	}
	// Split in half; the right sibling takes the upper half.
	mid := len(l.keys) / 2
	right := &leaf[V]{
		keys:   append([]float64(nil), l.keys[mid:]...),
		values: append([]V(nil), l.values[mid:]...),
		next:   l.next,
	}
	l.keys = l.keys[:mid:mid]
	l.values = l.values[:mid:mid]
	l.next = right
	return right.keys[0], right, true
}

func (n *internal[V]) insert(key float64, value V, order int) (float64, node[V], bool) {
	idx := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] > key })
	sep, right, split := n.children[idx].insert(key, value, order)
	n.total++
	if !split {
		return 0, nil, false
	}
	// Insert the separator and the new child after position idx.
	n.keys = append(n.keys, 0)
	copy(n.keys[idx+1:], n.keys[idx:])
	n.keys[idx] = sep
	n.children = append(n.children, nil)
	copy(n.children[idx+2:], n.children[idx+1:])
	n.children[idx+1] = right

	if len(n.keys) <= order {
		return 0, nil, false
	}
	// Split the internal node; the middle key is promoted.
	mid := len(n.keys) / 2
	promoted := n.keys[mid]
	sibling := &internal[V]{
		keys:     append([]float64(nil), n.keys[mid+1:]...),
		children: append([]node[V](nil), n.children[mid+1:]...),
	}
	for _, c := range sibling.children {
		sibling.total += c.count()
	}
	n.keys = n.keys[:mid:mid]
	n.children = n.children[: mid+1 : mid+1]
	n.total -= sibling.total
	return promoted, sibling, true
}

func (l *leaf[V]) count() int     { return len(l.keys) }
func (n *internal[V]) count() int { return n.total }

func (l *leaf[V]) rankLess(key float64) int {
	return sort.Search(len(l.keys), func(i int) bool { return l.keys[i] >= key })
}

func (n *internal[V]) rankLess(key float64) int {
	// Children left of the descent child hold only keys below their separator
	// (< key), children right of it only keys at or above it (>= key), so one
	// child per level needs a recursive count.
	idx := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] >= key })
	r := 0
	for j := 0; j < idx; j++ {
		r += n.children[j].count()
	}
	return r + n.children[idx].rankLess(key)
}

func (l *leaf[V]) countLE(key float64) int {
	return sort.Search(len(l.keys), func(i int) bool { return l.keys[i] > key })
}

func (n *internal[V]) countLE(key float64) int {
	idx := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] > key })
	c := 0
	for j := 0; j < idx; j++ {
		c += n.children[j].count()
	}
	return c + n.children[idx].countLE(key)
}

func (l *leaf[V]) firstLeafGE(key float64) (*leaf[V], int) {
	pos := sort.Search(len(l.keys), func(i int) bool { return l.keys[i] >= key })
	return l, pos
}

func (n *internal[V]) firstLeafGE(key float64) (*leaf[V], int) {
	// Descend into the child immediately left of the first separator >= key:
	// duplicates equal to a separator may live in the left sibling after a
	// split, and the leaf chain continues rightwards from there.
	idx := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] >= key })
	return n.children[idx].firstLeafGE(key)
}

// Ascend visits every entry in non-decreasing key order until fn returns
// false.
func (t *Tree[V]) Ascend(fn func(key float64, value V) bool) {
	for l := t.first; l != nil; l = l.next {
		for i := range l.keys {
			if !fn(l.keys[i], l.values[i]) {
				return
			}
		}
	}
}

// AscendGreaterOrEqual visits entries with key >= pivot in non-decreasing key
// order until fn returns false.
func (t *Tree[V]) AscendGreaterOrEqual(pivot float64, fn func(key float64, value V) bool) {
	l, pos := t.root.firstLeafGE(pivot)
	for ; l != nil; l, pos = l.next, 0 {
		for i := pos; i < len(l.keys); i++ {
			if !fn(l.keys[i], l.values[i]) {
				return
			}
		}
	}
}

// AscendRange visits entries with min <= key <= max in non-decreasing key
// order until fn returns false.
func (t *Tree[V]) AscendRange(min, max float64, fn func(key float64, value V) bool) {
	if min > max {
		return
	}
	t.AscendGreaterOrEqual(min, func(key float64, value V) bool {
		if key > max {
			return false
		}
		return fn(key, value)
	})
}

// AscendLessThan visits entries with key < pivot in non-decreasing key order
// until fn returns false.
func (t *Tree[V]) AscendLessThan(pivot float64, fn func(key float64, value V) bool) {
	t.Ascend(func(key float64, value V) bool {
		if key >= pivot {
			return false
		}
		return fn(key, value)
	})
}

// Rank returns the number of entries with key strictly less than key, in
// O(log n) using the per-node subtree counts.
func (t *Tree[V]) Rank(key float64) int { return t.root.rankLess(key) }

// CountGreater returns the number of entries with key strictly greater than
// key, in O(log n).
func (t *Tree[V]) CountGreater(key float64) int { return t.size - t.root.countLE(key) }

// CountRange returns the number of entries with min <= key <= max, in
// O(log n) using the per-node subtree counts.
func (t *Tree[V]) CountRange(min, max float64) int {
	if min > max {
		return 0
	}
	return t.root.countLE(max) - t.root.rankLess(min)
}

// MinKey returns the smallest key and false when the tree is empty.
func (t *Tree[V]) MinKey() (float64, bool) {
	for l := t.first; l != nil; l = l.next {
		if len(l.keys) > 0 {
			return l.keys[0], true
		}
	}
	return 0, false
}

// MaxKey returns the largest key and false when the tree is empty.
func (t *Tree[V]) MaxKey() (float64, bool) {
	if t.size == 0 {
		return 0, false
	}
	var last float64
	found := false
	for l := t.first; l != nil; l = l.next {
		if len(l.keys) > 0 {
			last = l.keys[len(l.keys)-1]
			found = true
		}
	}
	return last, found
}

// Height returns the number of levels in the tree (1 for a single leaf),
// useful in tests and diagnostics.
func (t *Tree[V]) Height() int {
	h := 1
	n := t.root
	for {
		in, ok := n.(*internal[V])
		if !ok {
			return h
		}
		h++
		n = in.children[0]
	}
}
