package stats

import (
	"fmt"

	"affinity/internal/measure"
)

// The scalar primitives live in internal/measure (the registry's specs are
// assembled from them); this file re-exports them and provides the
// spec-driven naive evaluation entry points.

// DefaultModePrecision is the bucket width used when computing the mode of a
// real-valued series (see measure.ModeOf).
const DefaultModePrecision = measure.DefaultModePrecision

// MeanOf returns the arithmetic mean of the samples.
func MeanOf(x []float64) (float64, error) { return measure.MeanOf(x) }

// MedianOf returns the median of the samples (the average of the two middle
// values for an even count).
func MedianOf(x []float64) (float64, error) { return measure.MedianOf(x) }

// ModeOf returns the mode of the samples after rounding them to the given
// precision (bucket width); see measure.ModeOf.
func ModeOf(x []float64, precision float64) (float64, error) {
	return measure.ModeOf(x, precision)
}

// SumOf returns the sum of the samples (h(X) in Eq. 7 of the paper).
func SumOf(x []float64) float64 { return measure.SumOf(x) }

// VarianceOf returns the sample variance (normalized by m-1) of the samples.
func VarianceOf(x []float64) (float64, error) { return measure.VarianceOf(x) }

// CovarianceOf returns the sample covariance (normalized by m-1) between two
// equally long series.
func CovarianceOf(x, y []float64) (float64, error) { return measure.CovarianceOf(x, y) }

// DotProductOf returns the inner product Σ x_i·y_i of two equally long
// series.
func DotProductOf(x, y []float64) (float64, error) { return measure.DotProductOf(x, y) }

// CorrelationOf returns the Pearson correlation coefficient between two
// equally long series.  It returns ErrZeroNormalizer when either series has
// zero variance.
func CorrelationOf(x, y []float64) (float64, error) {
	return measure.EvalPair(measure.Correlation, x, y)
}

// CosineOf returns the cosine similarity x·y / (‖x‖‖y‖).
func CosineOf(x, y []float64) (float64, error) {
	return measure.EvalPair(measure.Cosine, x, y)
}

// JaccardOf returns the generalized (real-valued) Jaccard coefficient
// x·y / (‖x‖² + ‖y‖² − x·y), the standard extension of the set-based Jaccard
// coefficient to real vectors (also known as the Tanimoto coefficient).
func JaccardOf(x, y []float64) (float64, error) {
	return measure.EvalPair(measure.Jaccard, x, y)
}

// DiceOf returns the generalized Dice coefficient 2·x·y / (‖x‖² + ‖y‖²).
func DiceOf(x, y []float64) (float64, error) {
	return measure.EvalPair(measure.Dice, x, y)
}

// HarmonicMeanOf returns the dot product normalized by the arithmetic mean of
// the squared norms, i.e. the harmonic-mean style similarity
// x·y / ((‖x‖²·‖y‖²) / (‖x‖² + ‖y‖²)).
func HarmonicMeanOf(x, y []float64) (float64, error) {
	return measure.EvalPair(measure.HarmonicMean, x, y)
}

// EuclideanDistanceOf returns the Euclidean distance ‖x − y‖, evaluated
// through the algebra as √(‖x‖² + ‖y‖² − 2·x·y).
func EuclideanDistanceOf(x, y []float64) (float64, error) {
	return measure.EvalPair(measure.EuclideanDistance, x, y)
}

// MeanSquaredDifferenceOf returns ‖x − y‖²/m, the mean squared difference of
// two equally long series.
func MeanSquaredDifferenceOf(x, y []float64) (float64, error) {
	return measure.EvalPair(measure.MeanSquaredDifference, x, y)
}

// AngularDistanceOf returns arccos(cosine(x, y))/π ∈ [0, 1].
func AngularDistanceOf(x, y []float64) (float64, error) {
	return measure.EvalPair(measure.AngularDistance, x, y)
}

// NormalizerOf returns the separable parameter U of a D-measure, computed
// naively from the two series' statistics: the quantity the spec's value
// transform combines with the base T-measure (Section 2.3, Eq. 8; for the
// ratio measures U is exactly the divisor).  For L- and T-measures the
// parameter is 1.
func NormalizerOf(m Measure, x, y []float64) (float64, error) {
	if len(x) == 0 || len(y) == 0 {
		return 0, ErrEmptyInput
	}
	if len(x) != len(y) {
		return 0, fmt.Errorf("%w: %d vs %d", ErrLengthMismatch, len(x), len(y))
	}
	sp, ok := measure.Find(m)
	if !ok {
		return 0, fmt.Errorf("%w: %d", ErrUnknownMeasure, int(m))
	}
	if !sp.Derived() {
		return 1, nil
	}
	su, err := measure.NaiveSeriesStat(sp.ParamStats, x)
	if err != nil {
		return 0, err
	}
	sv, err := measure.NaiveSeriesStat(sp.ParamStats, y)
	if err != nil {
		return 0, err
	}
	return sp.Param(su, sv), nil
}

// ComputeLocation computes an L-measure for a single series.
func ComputeLocation(m Measure, x []float64) (float64, error) {
	sp, ok := measure.Find(m)
	if !ok || !sp.Location() {
		return 0, fmt.Errorf("%w: %v is not an L-measure", ErrUnknownMeasure, m)
	}
	return sp.EvalLocation(x)
}

// ComputePair computes a T- or D-measure for a pair of series through the
// measure's spec: the base T value from the raw samples, then the spec's
// monotone transform of it.
func ComputePair(m Measure, x, y []float64) (float64, error) {
	return measure.EvalPair(m, x, y)
}
