package stats

import (
	"fmt"
	"math"
	"sort"
)

// DefaultModePrecision is the bucket width used when computing the mode of a
// real-valued series.  Real measurements rarely repeat exactly, so the mode
// is computed over values rounded to this precision (the paper computes the
// mode of sensor readings and stock quotes, which are quantized to a small
// number of decimals).
const DefaultModePrecision = 1e-4

// MeanOf returns the arithmetic mean of the samples.
func MeanOf(x []float64) (float64, error) {
	if len(x) == 0 {
		return 0, ErrEmptyInput
	}
	var sum float64
	for _, v := range x {
		sum += v
	}
	return sum / float64(len(x)), nil
}

// MedianOf returns the median of the samples (the average of the two middle
// values for an even count).
func MedianOf(x []float64) (float64, error) {
	if len(x) == 0 {
		return 0, ErrEmptyInput
	}
	sorted := make([]float64, len(x))
	copy(sorted, x)
	sort.Float64s(sorted)
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		return sorted[mid], nil
	}
	return (sorted[mid-1] + sorted[mid]) / 2, nil
}

// ModeOf returns the mode of the samples after rounding them to the given
// precision (bucket width).  Ties are broken by the smallest value so the
// result is deterministic.  A non-positive precision falls back to
// DefaultModePrecision.
func ModeOf(x []float64, precision float64) (float64, error) {
	if len(x) == 0 {
		return 0, ErrEmptyInput
	}
	if precision <= 0 {
		precision = DefaultModePrecision
	}
	counts := make(map[int64]int, len(x))
	for _, v := range x {
		counts[int64(math.Round(v/precision))]++
	}
	bestBucket := int64(math.MaxInt64)
	bestCount := -1
	for bucket, count := range counts {
		if count > bestCount || (count == bestCount && bucket < bestBucket) {
			bestCount = count
			bestBucket = bucket
		}
	}
	return float64(bestBucket) * precision, nil
}

// SumOf returns the sum of the samples (h(X) in Eq. 7 of the paper).
func SumOf(x []float64) float64 {
	var sum float64
	for _, v := range x {
		sum += v
	}
	return sum
}

// VarianceOf returns the sample variance (normalized by m-1) of the samples.
// A single sample has variance zero.
func VarianceOf(x []float64) (float64, error) {
	if len(x) == 0 {
		return 0, ErrEmptyInput
	}
	if len(x) == 1 {
		return 0, nil
	}
	mean, _ := MeanOf(x)
	var ss float64
	for _, v := range x {
		d := v - mean
		ss += d * d
	}
	return ss / float64(len(x)-1), nil
}

// CovarianceOf returns the sample covariance (normalized by m-1) between two
// equally long series.
func CovarianceOf(x, y []float64) (float64, error) {
	if len(x) == 0 || len(y) == 0 {
		return 0, ErrEmptyInput
	}
	if len(x) != len(y) {
		return 0, fmt.Errorf("%w: %d vs %d", ErrLengthMismatch, len(x), len(y))
	}
	if len(x) == 1 {
		return 0, nil
	}
	mx, _ := MeanOf(x)
	my, _ := MeanOf(y)
	var ss float64
	for i := range x {
		ss += (x[i] - mx) * (y[i] - my)
	}
	return ss / float64(len(x)-1), nil
}

// DotProductOf returns the inner product Σ x_i·y_i of two equally long
// series.
func DotProductOf(x, y []float64) (float64, error) {
	if len(x) == 0 || len(y) == 0 {
		return 0, ErrEmptyInput
	}
	if len(x) != len(y) {
		return 0, fmt.Errorf("%w: %d vs %d", ErrLengthMismatch, len(x), len(y))
	}
	var sum float64
	for i := range x {
		sum += x[i] * y[i]
	}
	return sum, nil
}

// CorrelationOf returns the Pearson correlation coefficient between two
// equally long series.  It returns ErrZeroNormalizer when either series has
// zero variance.
func CorrelationOf(x, y []float64) (float64, error) {
	cov, err := CovarianceOf(x, y)
	if err != nil {
		return 0, err
	}
	norm, err := NormalizerOf(Correlation, x, y)
	if err != nil {
		return 0, err
	}
	if norm == 0 {
		return 0, ErrZeroNormalizer
	}
	r := cov / norm
	// Guard against tiny floating point excursions outside [-1, 1].
	if r > 1 {
		r = 1
	} else if r < -1 {
		r = -1
	}
	return r, nil
}

// CosineOf returns the cosine similarity x·y / (‖x‖‖y‖).
func CosineOf(x, y []float64) (float64, error) {
	return derivedFromDot(Cosine, x, y)
}

// JaccardOf returns the generalized (real-valued) Jaccard coefficient
// x·y / (‖x‖² + ‖y‖² − x·y), the standard extension of the set-based Jaccard
// coefficient to real vectors (also known as the Tanimoto coefficient).
func JaccardOf(x, y []float64) (float64, error) {
	return derivedFromDot(Jaccard, x, y)
}

// DiceOf returns the generalized Dice coefficient 2·x·y / (‖x‖² + ‖y‖²).
func DiceOf(x, y []float64) (float64, error) {
	return derivedFromDot(Dice, x, y)
}

// HarmonicMeanOf returns the dot product normalized by the arithmetic mean of
// the squared norms, i.e. the harmonic-mean style similarity
// x·y / ((‖x‖²·‖y‖²) / (‖x‖² + ‖y‖²)).
func HarmonicMeanOf(x, y []float64) (float64, error) {
	return derivedFromDot(HarmonicMean, x, y)
}

func derivedFromDot(m Measure, x, y []float64) (float64, error) {
	dot, err := DotProductOf(x, y)
	if err != nil {
		return 0, err
	}
	norm, err := NormalizerOf(m, x, y)
	if err != nil {
		return 0, err
	}
	if norm == 0 {
		return 0, ErrZeroNormalizer
	}
	return dot / norm, nil
}

// NormalizerOf returns the separable normalizer U for a D-measure: the value
// the base T-measure is divided by to obtain the derived measure
// (Section 2.3, Eq. 8).  The normalizer of correlation is sqrt(var(x)·var(y));
// the dot-product family uses combinations of the squared norms.
//
// For L- and T-measures the normalizer is 1.
func NormalizerOf(m Measure, x, y []float64) (float64, error) {
	if len(x) == 0 || len(y) == 0 {
		return 0, ErrEmptyInput
	}
	if len(x) != len(y) {
		return 0, fmt.Errorf("%w: %d vs %d", ErrLengthMismatch, len(x), len(y))
	}
	switch m {
	case Correlation:
		vx, err := VarianceOf(x)
		if err != nil {
			return 0, err
		}
		vy, err := VarianceOf(y)
		if err != nil {
			return 0, err
		}
		return math.Sqrt(vx * vy), nil
	case Cosine:
		nx, _ := DotProductOf(x, x)
		ny, _ := DotProductOf(y, y)
		return math.Sqrt(nx * ny), nil
	case Jaccard:
		nx, _ := DotProductOf(x, x)
		ny, _ := DotProductOf(y, y)
		dot, _ := DotProductOf(x, y)
		return nx + ny - dot, nil
	case Dice:
		nx, _ := DotProductOf(x, x)
		ny, _ := DotProductOf(y, y)
		return (nx + ny) / 2, nil
	case HarmonicMean:
		nx, _ := DotProductOf(x, x)
		ny, _ := DotProductOf(y, y)
		if nx+ny == 0 {
			return 0, nil
		}
		return (nx * ny) / (nx + ny), nil
	default:
		if !m.Valid() {
			return 0, fmt.Errorf("%w: %d", ErrUnknownMeasure, int(m))
		}
		return 1, nil
	}
}

// ComputeLocation computes an L-measure for a single series.
func ComputeLocation(m Measure, x []float64) (float64, error) {
	switch m {
	case Mean:
		return MeanOf(x)
	case Median:
		return MedianOf(x)
	case Mode:
		return ModeOf(x, DefaultModePrecision)
	default:
		return 0, fmt.Errorf("%w: %v is not an L-measure", ErrUnknownMeasure, m)
	}
}

// ComputePair computes a T- or D-measure for a pair of series.
func ComputePair(m Measure, x, y []float64) (float64, error) {
	switch m {
	case Covariance:
		return CovarianceOf(x, y)
	case DotProduct:
		return DotProductOf(x, y)
	case Correlation:
		return CorrelationOf(x, y)
	case Cosine:
		return CosineOf(x, y)
	case Jaccard:
		return JaccardOf(x, y)
	case Dice:
		return DiceOf(x, y)
	case HarmonicMean:
		return HarmonicMeanOf(x, y)
	default:
		return 0, fmt.Errorf("%w: %v is not a pairwise measure", ErrUnknownMeasure, m)
	}
}
