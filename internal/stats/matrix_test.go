package stats

import (
	"errors"
	"math"
	"testing"

	"affinity/internal/mat"
	"affinity/internal/timeseries"
)

func testData(t *testing.T) *timeseries.DataMatrix {
	t.Helper()
	d, err := timeseries.NewNamedDataMatrix(
		[]string{"a", "b", "c"},
		[][]float64{
			{1, 2, 3, 4, 5},
			{2, 4, 6, 8, 10},
			{5, 3, 8, 1, 9},
		})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestLocationVector(t *testing.T) {
	d := testData(t)
	means, err := LocationVector(Mean, d)
	if err != nil {
		t.Fatalf("LocationVector: %v", err)
	}
	if !almostEqual(means[0], 3, 1e-12) || !almostEqual(means[1], 6, 1e-12) {
		t.Fatalf("means = %v", means)
	}
	medians, err := LocationVector(Median, d)
	if err != nil {
		t.Fatalf("LocationVector median: %v", err)
	}
	if medians[2] != 5 {
		t.Fatalf("median[2] = %v", medians[2])
	}
	if _, err := LocationVector(Covariance, d); !errors.Is(err, ErrUnknownMeasure) {
		t.Fatalf("non-L measure err = %v", err)
	}
}

func TestPairwiseMatrixCovariance(t *testing.T) {
	d := testData(t)
	cov, err := CovarianceMatrix(d)
	if err != nil {
		t.Fatalf("CovarianceMatrix: %v", err)
	}
	if r, c := cov.Dims(); r != 3 || c != 3 {
		t.Fatalf("dims (%d,%d)", r, c)
	}
	// Diagonal equals variances.
	s0, _ := d.Series(0)
	v0, _ := VarianceOf(s0)
	if !almostEqual(cov.At(0, 0), v0, 1e-12) {
		t.Fatalf("cov[0,0] = %v, want %v", cov.At(0, 0), v0)
	}
	// Symmetry.
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if !almostEqual(cov.At(i, j), cov.At(j, i), 1e-12) {
				t.Fatal("covariance matrix not symmetric")
			}
		}
	}
	// Cross-check one entry against the scalar function.
	s1, _ := d.Series(1)
	c01, _ := CovarianceOf(s0, s1)
	if !almostEqual(cov.At(0, 1), c01, 1e-12) {
		t.Fatalf("cov[0,1] = %v, want %v", cov.At(0, 1), c01)
	}
}

func TestPairwiseMatrixCorrelationAndDot(t *testing.T) {
	d := testData(t)
	corr, err := CorrelationMatrix(d)
	if err != nil {
		t.Fatalf("CorrelationMatrix: %v", err)
	}
	if !almostEqual(corr.At(0, 1), 1, 1e-12) {
		t.Fatalf("corr[0,1] = %v, want 1 (series b = 2*a)", corr.At(0, 1))
	}
	if !almostEqual(corr.At(0, 0), 1, 1e-12) {
		t.Fatalf("diagonal correlation = %v, want 1", corr.At(0, 0))
	}

	dot, err := DotProductMatrix(d)
	if err != nil {
		t.Fatalf("DotProductMatrix: %v", err)
	}
	s0, _ := d.Series(0)
	s2, _ := d.Series(2)
	want, _ := DotProductOf(s0, s2)
	if !almostEqual(dot.At(0, 2), want, 1e-12) {
		t.Fatalf("dot[0,2] = %v, want %v", dot.At(0, 2), want)
	}

	if _, err := PairwiseMatrix(Mean, d); !errors.Is(err, ErrUnknownMeasure) {
		t.Fatalf("PairwiseMatrix(Mean) err = %v", err)
	}
}

func TestPairwiseMatrixConstantSeriesIsZeroNotError(t *testing.T) {
	d, _ := timeseries.NewDataMatrix([][]float64{
		{1, 2, 3},
		{5, 5, 5}, // constant: zero variance
	})
	corr, err := CorrelationMatrix(d)
	if err != nil {
		t.Fatalf("CorrelationMatrix with constant series: %v", err)
	}
	if corr.At(0, 1) != 0 {
		t.Fatalf("correlation with constant series = %v, want 0", corr.At(0, 1))
	}
}

func TestPairMeasure(t *testing.T) {
	d := testData(t)
	got, err := PairMeasure(Correlation, d, timeseries.Pair{U: 0, V: 1})
	if err != nil || !almostEqual(got, 1, 1e-12) {
		t.Fatalf("PairMeasure = %v, %v", got, err)
	}
	if _, err := PairMeasure(Correlation, d, timeseries.Pair{U: 0, V: 9}); err == nil {
		t.Fatal("invalid pair should error")
	}
	if _, err := PairMeasure(Correlation, d, timeseries.Pair{U: 9, V: 10}); err == nil {
		t.Fatal("invalid pair should error")
	}
}

func TestPairMatrixHelpers(t *testing.T) {
	d := testData(t)
	x, err := d.PairMatrix(timeseries.Pair{U: 0, V: 2})
	if err != nil {
		t.Fatal(err)
	}
	cov, err := PairMatrixCovariance(x)
	if err != nil {
		t.Fatalf("PairMatrixCovariance: %v", err)
	}
	s0, _ := d.Series(0)
	s2, _ := d.Series(2)
	wantCov, _ := CovarianceOf(s0, s2)
	if !almostEqual(cov.At(0, 1), wantCov, 1e-12) {
		t.Fatalf("pair cov = %v, want %v", cov.At(0, 1), wantCov)
	}
	wantVar, _ := VarianceOf(s2)
	if !almostEqual(cov.At(1, 1), wantVar, 1e-12) {
		t.Fatalf("pair var = %v, want %v", cov.At(1, 1), wantVar)
	}

	dot, err := PairMatrixDotProduct(x)
	if err != nil {
		t.Fatalf("PairMatrixDotProduct: %v", err)
	}
	wantDot, _ := DotProductOf(s0, s2)
	if !almostEqual(dot.At(0, 1), wantDot, 1e-12) {
		t.Fatalf("pair dot = %v, want %v", dot.At(0, 1), wantDot)
	}

	loc, err := PairMatrixLocation(Mean, x)
	if err != nil {
		t.Fatalf("PairMatrixLocation: %v", err)
	}
	if !almostEqual(loc[0], 3, 1e-12) {
		t.Fatalf("pair mean = %v", loc)
	}

	sums, err := ColumnSums(x)
	if err != nil {
		t.Fatalf("ColumnSums: %v", err)
	}
	if !almostEqual(sums[0], 15, 1e-12) || !almostEqual(sums[1], 26, 1e-12) {
		t.Fatalf("ColumnSums = %v", sums)
	}

	wide := mat.New(5, 3)
	if _, err := PairMatrixCovariance(wide); err == nil {
		t.Fatal("3-column matrix should error")
	}
	if _, err := PairMatrixDotProduct(wide); err == nil {
		t.Fatal("3-column matrix should error")
	}
	if _, err := PairMatrixLocation(Mean, wide); err == nil {
		t.Fatal("3-column matrix should error")
	}
	if _, err := ColumnSums(wide); err == nil {
		t.Fatal("3-column matrix should error")
	}
}

func TestRMSE(t *testing.T) {
	truth := []float64{0, 1, 2, 3, 4}
	exact := []float64{0, 1, 2, 3, 4}
	r, err := RMSE(truth, exact)
	if err != nil || r != 0 {
		t.Fatalf("RMSE exact = %v, %v", r, err)
	}

	approx := []float64{0, 1, 2, 3, 8}
	r, err = RMSE(truth, approx)
	if err != nil {
		t.Fatal(err)
	}
	// Normalized error: (4-8)/4 = -1 for one of five entries => RMSE = 100*sqrt(1/5).
	want := 100 * math.Sqrt(1.0/5.0)
	if !almostEqual(r, want, 1e-9) {
		t.Fatalf("RMSE = %v, want %v", r, want)
	}

	if _, err := RMSE([]float64{1}, []float64{1, 2}); !errors.Is(err, ErrLengthMismatch) {
		t.Fatalf("length mismatch err = %v", err)
	}
	if r, err := RMSE(nil, nil); err != nil || r != 0 {
		t.Fatalf("empty RMSE = %v, %v", r, err)
	}
	// Zero range: falls back to absolute differences.
	r, err = RMSE([]float64{2, 2}, []float64{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(r, 100*math.Sqrt(0.5), 1e-9) {
		t.Fatalf("zero-range RMSE = %v", r)
	}
}
