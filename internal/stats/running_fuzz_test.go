package stats

import (
	"affinity/internal/measure"

	"encoding/binary"
	"math"
	"testing"
)

// decodeSamples turns fuzz bytes into a bounded list of finite, moderately
// sized samples (the realistic regime for the incremental statistics, whose
// documented accuracy contract excludes astronomically scaled inputs).
func decodeSamples(data []byte) []float64 {
	const maxSamples = 256
	var out []float64
	for len(data) >= 8 && len(out) < maxSamples {
		bits := binary.LittleEndian.Uint64(data[:8])
		data = data[8:]
		v := math.Float64frombits(bits)
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		out = append(out, math.Mod(v, 1e4))
	}
	return out
}

// approxEqual compares with a relative tolerance scaled to the magnitudes
// involved in the moment formulas (sums of squares of the folded samples).
func approxEqual(a, b, scale float64) bool {
	tol := 1e-7 * math.Max(1, scale)
	return math.Abs(a-b) <= tol
}

// FuzzRunningAddEvict slides a Running window along a fuzzed sample stream
// and cross-checks count, sum, squared norm, mean and variance against a
// recomputation from the raw samples remaining in the window.
func FuzzRunningAddEvict(f *testing.F) {
	f.Add([]byte{}, uint8(0))
	f.Add(sampleBytes(1, 2, 3, 4, 5), uint8(2))
	f.Add(sampleBytes(-1000, 1000, 0.5, -0.25, 3.75, 42), uint8(3))
	f.Add(sampleBytes(7, 7, 7, 7, 7, 7, 7), uint8(5))

	f.Fuzz(func(t *testing.T, data []byte, evictCount uint8) {
		samples := decodeSamples(data)
		var r Running
		r.Add(samples...)
		evict := int(evictCount)
		if evict > len(samples) {
			evict = len(samples)
		}
		r.Evict(samples[:evict]...)
		window := samples[evict:]

		if r.Count() != len(window) {
			t.Fatalf("Count = %d, want %d", r.Count(), len(window))
		}
		var sum, sumSq float64
		for _, v := range window {
			sum += v
			sumSq += v * v
		}
		// The incremental error is proportional to the magnitudes that passed
		// through the window — evicted mass included (that is exactly why the
		// engine refreshes the sums periodically) — so the tolerance scales
		// with all samples ever added, not just the surviving window.
		var scale float64
		for _, v := range samples {
			scale += v * v
		}
		if !approxEqual(r.Sum(), sum, scale) {
			t.Fatalf("Sum = %v, want %v", r.Sum(), sum)
		}
		if !approxEqual(r.SqNorm(), sumSq, scale) {
			t.Fatalf("SqNorm = %v, want %v", r.SqNorm(), sumSq)
		}
		if len(window) > 0 {
			mean := sum / float64(len(window))
			if !approxEqual(r.Mean(), mean, scale) {
				t.Fatalf("Mean = %v, want %v", r.Mean(), mean)
			}
		}
		if len(window) >= 2 {
			mean := sum / float64(len(window))
			var ss float64
			for _, v := range window {
				ss += (v - mean) * (v - mean)
			}
			wantVar := ss / float64(len(window)-1)
			if !approxEqual(r.Variance(), wantVar, scale) {
				t.Fatalf("Variance = %v, want %v (window %v)", r.Variance(), wantVar, window)
			}
			if r.Variance() < 0 {
				t.Fatalf("Variance = %v < 0", r.Variance())
			}
		}
	})
}

// FuzzRunningPairAddEvict does the same for the joint statistics backing the
// pivot summaries: covariance, variances, dot product and the line fit must
// match a recomputation from the raw aligned windows.
func FuzzRunningPairAddEvict(f *testing.F) {
	f.Add([]byte{}, uint8(0))
	f.Add(sampleBytes(1, 2, 3, 4, 5, 6, 7, 8), uint8(1))
	f.Add(sampleBytes(0.5, -0.5, 1.5, -1.5, 10, -10, 2, 3, 4, 5), uint8(2))

	f.Fuzz(func(t *testing.T, data []byte, evictCount uint8) {
		samples := decodeSamples(data)
		m := len(samples) / 2
		xs, ys := samples[:m], samples[m:2*m]

		var r RunningPair
		for i := 0; i < m; i++ {
			r.Add(xs[i], ys[i])
		}
		evict := int(evictCount)
		if evict > m {
			evict = m
		}
		for i := 0; i < evict; i++ {
			r.Evict(xs[i], ys[i])
		}
		wx, wy := xs[evict:], ys[evict:]
		k := len(wx)

		if r.Count() != k {
			t.Fatalf("Count = %d, want %d", r.Count(), k)
		}
		var sumX, sumY, sumXX, sumYY, sumXY float64
		for i := 0; i < k; i++ {
			sumX += wx[i]
			sumY += wy[i]
			sumXX += wx[i] * wx[i]
			sumYY += wy[i] * wy[i]
			sumXY += wx[i] * wy[i]
		}
		// As in FuzzRunningAddEvict: tolerance scales with all samples ever
		// added, since evicted mass leaves rounding residue behind.
		var scale float64
		for i := 0; i < m; i++ {
			scale += xs[i]*xs[i] + ys[i]*ys[i]
		}
		if !approxEqual(r.DotProduct(), sumXY, scale) {
			t.Fatalf("DotProduct = %v, want %v", r.DotProduct(), sumXY)
		}
		sums := r.Sums()
		if !approxEqual(sums[0], sumX, scale) || !approxEqual(sums[1], sumY, scale) {
			t.Fatalf("Sums = %v, want (%v, %v)", sums, sumX, sumY)
		}
		if k >= 2 {
			nf := float64(k)
			meanX, meanY := sumX/nf, sumY/nf
			var cxx, cyy, cxy float64
			for i := 0; i < k; i++ {
				cxx += (wx[i] - meanX) * (wx[i] - meanX)
				cyy += (wy[i] - meanY) * (wy[i] - meanY)
				cxy += (wx[i] - meanX) * (wy[i] - meanY)
			}
			if !approxEqual(r.VarianceX(), cxx/(nf-1), scale) {
				t.Fatalf("VarianceX = %v, want %v", r.VarianceX(), cxx/(nf-1))
			}
			if !approxEqual(r.VarianceY(), cyy/(nf-1), scale) {
				t.Fatalf("VarianceY = %v, want %v", r.VarianceY(), cyy/(nf-1))
			}
			if !approxEqual(r.Covariance(), cxy/(nf-1), scale) {
				t.Fatalf("Covariance = %v, want %v", r.Covariance(), cxy/(nf-1))
			}
			// Line fit invariants: residual fraction is in [0, 1] and the fit
			// reproduces a perfectly linear relationship.
			_, _, resid := r.LineFit()
			if resid < 0 || resid > 1 || math.IsNaN(resid) {
				t.Fatalf("LineFit residual fraction = %v out of [0,1]", resid)
			}
		}

		// Monotone-decreasing transform oracle: the Euclidean distance
		// assembled from the running sufficient statistics (the engine's
		// per-series SeriesStat path: U = Σx²+Σy², T = Σxy) must match the
		// direct ‖x−y‖ recomputation on the surviving window.
		if k > 0 {
			var direct float64
			for i := 0; i < k; i++ {
				d := wx[i] - wy[i]
				direct += d * d
			}
			sp := measure.Lookup(measure.EuclideanDistance)
			got, err := sp.Value(r.DotProduct(), sumXX+sumYY, k)
			if err != nil {
				t.Fatalf("euclidean from running stats: %v", err)
			}
			want := math.Sqrt(direct)
			tol := 1e-7 * math.Max(1, math.Sqrt(scale))
			if math.Abs(got-want) > tol {
				t.Fatalf("euclidean from running stats = %v, want %v", got, want)
			}
			gotMSD, err := measure.Lookup(measure.MeanSquaredDifference).Value(r.DotProduct(), sumXX+sumYY, k)
			if err != nil {
				t.Fatalf("msd from running stats: %v", err)
			}
			if math.Abs(gotMSD-direct/float64(k)) > 1e-7*math.Max(1, scale) {
				t.Fatalf("msd from running stats = %v, want %v", gotMSD, direct/float64(k))
			}
		}
	})
}

func sampleBytes(values ...float64) []byte {
	out := make([]byte, 0, len(values)*8)
	for _, v := range values {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
		out = append(out, b[:]...)
	}
	return out
}
