package stats

import (
	"fmt"
	"math"

	"affinity/internal/mat"
)

// This file implements incremental sufficient statistics for the streaming
// engine: running sums (Σx, Σx², Σxy) that support O(1) add and evict per
// sample, so that sliding-window statistics — per-series variance and squared
// norm, and the 2-by-2 pivot summaries Σ(O_p), Π(O_p) and h(O_p) — can be
// maintained without rescanning the raw window.
//
// The moment-based formulas (e.g. var = (Σx² − n·x̄²)/(n−1)) trade a small
// amount of numerical headroom against the two-pass formulas in scalar.go:
// after many add/evict cycles the running sums can accumulate rounding error,
// which is why the streaming engine periodically refreshes them from the raw
// window (StreamConfig.StatsRefreshEvery).  Tests assert agreement with the
// two-pass computations to ~1e-9 relative error on realistic data.

// Running maintains the sufficient statistics of one series window:
// the sample count, Σx and Σx².
type Running struct {
	n     int
	sum   float64
	sumSq float64
}

// NewRunningFrom returns running statistics seeded from a full window.
func NewRunningFrom(x []float64) Running {
	var r Running
	r.Add(x...)
	return r
}

// Add folds new samples into the window.
func (r *Running) Add(xs ...float64) {
	for _, x := range xs {
		r.n++
		r.sum += x
		r.sumSq += x * x
	}
}

// Evict removes samples that left the window.  The caller supplies the
// evicted values (the window owner knows them); evicting more samples than
// were added corrupts the statistics and is the caller's responsibility to
// avoid.
func (r *Running) Evict(xs ...float64) {
	for _, x := range xs {
		r.n--
		r.sum -= x
		r.sumSq -= x * x
	}
}

// Count returns the number of samples currently in the window.
func (r *Running) Count() int { return r.n }

// Sum returns Σx.
func (r *Running) Sum() float64 { return r.sum }

// SqNorm returns Σx², the squared Euclidean norm of the window.
func (r *Running) SqNorm() float64 { return r.sumSq }

// Mean returns the window mean, or 0 for an empty window.
func (r *Running) Mean() float64 {
	if r.n == 0 {
		return 0
	}
	return r.sum / float64(r.n)
}

// Variance returns the sample variance (normalized by n−1) computed from the
// sufficient statistics, clamped at zero against rounding excursions.
func (r *Running) Variance() float64 {
	if r.n < 2 {
		return 0
	}
	mean := r.sum / float64(r.n)
	v := (r.sumSq - float64(r.n)*mean*mean) / float64(r.n-1)
	if v < 0 {
		return 0
	}
	return v
}

// RunningPair maintains the joint sufficient statistics of two aligned series
// windows: the count and Σx, Σy, Σx², Σy², Σxy.  It backs the pivot summary
// quantities (Eq. 2 and Eq. 7 of the paper) with O(1) updates.
type RunningPair struct {
	n     int
	sumX  float64
	sumY  float64
	sumXX float64
	sumYY float64
	sumXY float64
}

// NewRunningPairFrom returns joint running statistics seeded from two full,
// equally long windows.
func NewRunningPairFrom(x, y []float64) (RunningPair, error) {
	var r RunningPair
	if len(x) != len(y) {
		return r, fmt.Errorf("%w: %d vs %d", ErrLengthMismatch, len(x), len(y))
	}
	for i := range x {
		r.Add(x[i], y[i])
	}
	return r, nil
}

// Add folds one aligned sample pair into the window.
func (r *RunningPair) Add(x, y float64) {
	r.n++
	r.sumX += x
	r.sumY += y
	r.sumXX += x * x
	r.sumYY += y * y
	r.sumXY += x * y
}

// Evict removes one aligned sample pair that left the window.
func (r *RunningPair) Evict(x, y float64) {
	r.n--
	r.sumX -= x
	r.sumY -= y
	r.sumXX -= x * x
	r.sumYY -= y * y
	r.sumXY -= x * y
}

// Count returns the number of aligned sample pairs in the window.
func (r *RunningPair) Count() int { return r.n }

// Sums returns (Σx, Σy): the h(X) column sums of Eq. 7.
func (r *RunningPair) Sums() [2]float64 { return [2]float64{r.sumX, r.sumY} }

// Covariance returns the sample covariance Σ12 (normalized by n−1).
func (r *RunningPair) Covariance() float64 {
	if r.n < 2 {
		return 0
	}
	nf := float64(r.n)
	return (r.sumXY - r.sumX*r.sumY/nf) / (nf - 1)
}

// VarianceX returns the sample variance of the first window.
func (r *RunningPair) VarianceX() float64 {
	return varianceFromSums(r.n, r.sumX, r.sumXX)
}

// VarianceY returns the sample variance of the second window.
func (r *RunningPair) VarianceY() float64 {
	return varianceFromSums(r.n, r.sumY, r.sumYY)
}

// DotProduct returns Σxy.
func (r *RunningPair) DotProduct() float64 { return r.sumXY }

// CovarianceMatrix returns the 2-by-2 sample covariance matrix Σ(X) of the
// pair window (Eq. 2), matching stats.PairMatrixCovariance.
func (r *RunningPair) CovarianceMatrix() *mat.Matrix {
	out := mat.New(2, 2)
	cov := r.Covariance()
	out.Set(0, 0, r.VarianceX())
	out.Set(0, 1, cov)
	out.Set(1, 0, cov)
	out.Set(1, 1, r.VarianceY())
	return out
}

// GramMatrix returns the 2-by-2 dot product (Gram) matrix Π(X) of the pair
// window, matching stats.PairMatrixDotProduct.
func (r *RunningPair) GramMatrix() *mat.Matrix {
	out := mat.New(2, 2)
	out.Set(0, 0, r.sumXX)
	out.Set(0, 1, r.sumXY)
	out.Set(1, 0, r.sumXY)
	out.Set(1, 1, r.sumYY)
	return out
}

// Correlation returns the Pearson correlation coefficient of the pair window,
// clamped to [−1, 1], with ErrZeroNormalizer when either variance is zero.
func (r *RunningPair) Correlation() (float64, error) {
	vx, vy := r.VarianceX(), r.VarianceY()
	if vx == 0 || vy == 0 {
		return 0, ErrZeroNormalizer
	}
	rho := r.Covariance() / math.Sqrt(vx*vy)
	if rho > 1 {
		rho = 1
	} else if rho < -1 {
		rho = -1
	}
	return rho, nil
}

// LineFit returns the least-squares coefficients (a, b) of y ≈ a·x + b
// together with the fraction of y's centered energy left unexplained by the
// fit (1 − R², in [0, 1]).  A degenerate x yields a = 0, b = ȳ; a constant y
// yields quality residual 0 (the fit is exact).
//
// The residual fraction is the streaming engine's LSFD-drift proxy: the LSFD
// between a pivot pair matrix [s_c, r] and a sequence pair matrix [s_c, s_o]
// is the energy of ŝ_o outside the best rank-2 subspace of the centered
// concatenation, which is upper-bounded by the residual of ŝ_o against r
// alone; tracking how this fraction moves between refits bounds how stale an
// affine relationship has become.
func (r *RunningPair) LineFit() (a, b, residFrac float64) {
	if r.n == 0 {
		return 0, 0, 0
	}
	nf := float64(r.n)
	sxxC := r.sumXX - r.sumX*r.sumX/nf
	syyC := r.sumYY - r.sumY*r.sumY/nf
	sxyC := r.sumXY - r.sumX*r.sumY/nf
	if sxxC <= 0 {
		b = r.sumY / nf
		return 0, b, 0
	}
	a = sxyC / sxxC
	b = (r.sumY - a*r.sumX) / nf
	if syyC <= 0 {
		return a, b, 0
	}
	resid := syyC - sxyC*sxyC/sxxC
	if resid < 0 {
		resid = 0
	}
	return a, b, resid / syyC
}

func varianceFromSums(n int, sum, sumSq float64) float64 {
	if n < 2 {
		return 0
	}
	nf := float64(n)
	mean := sum / nf
	v := (sumSq - nf*mean*mean) / (nf - 1)
	if v < 0 {
		return 0
	}
	return v
}
