package stats

import (
	"math"
	"math/rand"
	"testing"
)

const runningTol = 1e-9

func relClose(a, b, tol float64) bool {
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale < 1 {
		scale = 1
	}
	return diff <= tol*scale
}

func randomSeries(rng *rand.Rand, m int) []float64 {
	out := make([]float64, m)
	for i := range out {
		out[i] = 10*rng.NormFloat64() + 3
	}
	return out
}

func TestRunningMatchesTwoPass(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x := randomSeries(rng, 257)
	r := NewRunningFrom(x)

	if r.Count() != len(x) {
		t.Fatalf("Count = %d", r.Count())
	}
	wantMean, _ := MeanOf(x)
	if !relClose(r.Mean(), wantMean, runningTol) {
		t.Fatalf("Mean = %v, want %v", r.Mean(), wantMean)
	}
	wantVar, _ := VarianceOf(x)
	if !relClose(r.Variance(), wantVar, runningTol) {
		t.Fatalf("Variance = %v, want %v", r.Variance(), wantVar)
	}
	wantSq, _ := DotProductOf(x, x)
	if !relClose(r.SqNorm(), wantSq, runningTol) {
		t.Fatalf("SqNorm = %v, want %v", r.SqNorm(), wantSq)
	}
	if !relClose(r.Sum(), SumOf(x), runningTol) {
		t.Fatalf("Sum = %v, want %v", r.Sum(), SumOf(x))
	}
}

// TestRunningSlidingWindow drives many add/evict cycles and checks the
// running statistics stay in agreement with a from-scratch computation over
// the current window.
func TestRunningSlidingWindow(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const window = 64
	stream := randomSeries(rng, 2048)

	r := NewRunningFrom(stream[:window])
	for i := window; i < len(stream); i++ {
		r.Add(stream[i])
		r.Evict(stream[i-window])
		if i%97 == 0 {
			cur := stream[i-window+1 : i+1]
			wantVar, _ := VarianceOf(cur)
			if !relClose(r.Variance(), wantVar, runningTol) {
				t.Fatalf("step %d: Variance = %v, want %v", i, r.Variance(), wantVar)
			}
			wantMean, _ := MeanOf(cur)
			if !relClose(r.Mean(), wantMean, runningTol) {
				t.Fatalf("step %d: Mean = %v, want %v", i, r.Mean(), wantMean)
			}
		}
	}
	if r.Count() != window {
		t.Fatalf("Count after sliding = %d", r.Count())
	}
}

func TestRunningDegenerate(t *testing.T) {
	var r Running
	if r.Mean() != 0 || r.Variance() != 0 {
		t.Fatal("empty running stats should be zero")
	}
	r.Add(5)
	if r.Variance() != 0 {
		t.Fatalf("single-sample variance = %v", r.Variance())
	}
}

func TestRunningPairMatchesTwoPass(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	x := randomSeries(rng, 191)
	y := randomSeries(rng, 191)
	r, err := NewRunningPairFrom(x, y)
	if err != nil {
		t.Fatalf("NewRunningPairFrom: %v", err)
	}

	wantCov, _ := CovarianceOf(x, y)
	if !relClose(r.Covariance(), wantCov, runningTol) {
		t.Fatalf("Covariance = %v, want %v", r.Covariance(), wantCov)
	}
	wantDot, _ := DotProductOf(x, y)
	if !relClose(r.DotProduct(), wantDot, runningTol) {
		t.Fatalf("DotProduct = %v, want %v", r.DotProduct(), wantDot)
	}
	wantCorr, _ := CorrelationOf(x, y)
	gotCorr, err := r.Correlation()
	if err != nil {
		t.Fatalf("Correlation: %v", err)
	}
	if !relClose(gotCorr, wantCorr, 1e-8) {
		t.Fatalf("Correlation = %v, want %v", gotCorr, wantCorr)
	}
	sums := r.Sums()
	if !relClose(sums[0], SumOf(x), runningTol) || !relClose(sums[1], SumOf(y), runningTol) {
		t.Fatalf("Sums = %v", sums)
	}

	cov := r.CovarianceMatrix()
	vx, _ := VarianceOf(x)
	vy, _ := VarianceOf(y)
	if !relClose(cov.At(0, 0), vx, runningTol) || !relClose(cov.At(1, 1), vy, runningTol) ||
		!relClose(cov.At(0, 1), wantCov, runningTol) {
		t.Fatalf("CovarianceMatrix = %v", cov)
	}
	gram := r.GramMatrix()
	sqx, _ := DotProductOf(x, x)
	if !relClose(gram.At(0, 0), sqx, runningTol) || !relClose(gram.At(0, 1), wantDot, runningTol) {
		t.Fatalf("GramMatrix = %v", gram)
	}
}

func TestRunningPairLengthMismatch(t *testing.T) {
	if _, err := NewRunningPairFrom([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch should fail")
	}
}

func TestRunningPairCorrelationZeroNormalizer(t *testing.T) {
	r, err := NewRunningPairFrom([]float64{2, 2, 2}, []float64{1, 2, 3})
	if err != nil {
		t.Fatalf("NewRunningPairFrom: %v", err)
	}
	if _, err := r.Correlation(); err != ErrZeroNormalizer {
		t.Fatalf("constant series correlation error = %v", err)
	}
}

func TestRunningPairLineFit(t *testing.T) {
	// y = 3x − 2 exactly: zero residual fraction.
	x := []float64{1, 2, 3, 4, 5}
	y := make([]float64, len(x))
	for i := range x {
		y[i] = 3*x[i] - 2
	}
	r, _ := NewRunningPairFrom(x, y)
	a, b, q := r.LineFit()
	if !relClose(a, 3, runningTol) || !relClose(b, -2, runningTol) {
		t.Fatalf("LineFit = (%v, %v)", a, b)
	}
	if q > runningTol {
		t.Fatalf("exact fit residual fraction = %v", q)
	}

	// A constant x degenerates to a = 0, b = mean(y).
	cx := []float64{4, 4, 4}
	cy := []float64{1, 2, 6}
	rc, _ := NewRunningPairFrom(cx, cy)
	a, b, q = rc.LineFit()
	if a != 0 || !relClose(b, 3, runningTol) || q != 0 {
		t.Fatalf("degenerate LineFit = (%v, %v, %v)", a, b, q)
	}

	// Uncorrelated noise against x: residual fraction close to 1.
	rng := rand.New(rand.NewSource(3))
	nx := randomSeries(rng, 512)
	ny := randomSeries(rng, 512)
	rn, _ := NewRunningPairFrom(nx, ny)
	_, _, q = rn.LineFit()
	if q < 0.5 || q > 1 {
		t.Fatalf("noise residual fraction = %v", q)
	}
}

// TestRunningPairSlidingWindow checks joint statistics across add/evict
// cycles against from-scratch computation.
func TestRunningPairSlidingWindow(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	const window = 48
	xs := randomSeries(rng, 1024)
	ys := randomSeries(rng, 1024)

	r, _ := NewRunningPairFrom(xs[:window], ys[:window])
	for i := window; i < len(xs); i++ {
		r.Add(xs[i], ys[i])
		r.Evict(xs[i-window], ys[i-window])
		if i%131 == 0 {
			cx := xs[i-window+1 : i+1]
			cy := ys[i-window+1 : i+1]
			wantCov, _ := CovarianceOf(cx, cy)
			if !relClose(r.Covariance(), wantCov, runningTol) {
				t.Fatalf("step %d: Covariance = %v, want %v", i, r.Covariance(), wantCov)
			}
			wantDot, _ := DotProductOf(cx, cy)
			if !relClose(r.DotProduct(), wantDot, runningTol) {
				t.Fatalf("step %d: DotProduct = %v, want %v", i, r.DotProduct(), wantDot)
			}
		}
	}
}
