package stats

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanMedianMode(t *testing.T) {
	x := []float64{1, 2, 2, 3, 7}

	mean, err := MeanOf(x)
	if err != nil || !almostEqual(mean, 3, 1e-12) {
		t.Fatalf("MeanOf = %v, %v", mean, err)
	}

	median, err := MedianOf(x)
	if err != nil || median != 2 {
		t.Fatalf("MedianOf = %v, %v", median, err)
	}

	medianEven, err := MedianOf([]float64{4, 1, 3, 2})
	if err != nil || medianEven != 2.5 {
		t.Fatalf("MedianOf even = %v, %v", medianEven, err)
	}

	mode, err := ModeOf(x, 0)
	if err != nil || !almostEqual(mode, 2, 1e-9) {
		t.Fatalf("ModeOf = %v, %v", mode, err)
	}
}

func TestMedianDoesNotMutateInput(t *testing.T) {
	x := []float64{3, 1, 2}
	if _, err := MedianOf(x); err != nil {
		t.Fatal(err)
	}
	if x[0] != 3 || x[1] != 1 || x[2] != 2 {
		t.Fatalf("MedianOf mutated its input: %v", x)
	}
}

func TestModeTieBreaking(t *testing.T) {
	// Both 1 and 2 occur twice: the smaller value must win deterministically.
	mode, err := ModeOf([]float64{2, 1, 2, 1, 5}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(mode, 1, 1e-9) {
		t.Fatalf("ModeOf tie = %v, want 1", mode)
	}
}

func TestModePrecisionBuckets(t *testing.T) {
	// With a coarse precision, 1.01 and 1.02 collapse into the same bucket.
	mode, err := ModeOf([]float64{1.01, 1.02, 5.0}, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(mode, 1.0, 1e-9) {
		t.Fatalf("coarse mode = %v, want 1.0", mode)
	}
}

func TestEmptyInputErrors(t *testing.T) {
	if _, err := MeanOf(nil); !errors.Is(err, ErrEmptyInput) {
		t.Fatalf("MeanOf(nil) err = %v", err)
	}
	if _, err := MedianOf(nil); !errors.Is(err, ErrEmptyInput) {
		t.Fatalf("MedianOf(nil) err = %v", err)
	}
	if _, err := ModeOf(nil, 0); !errors.Is(err, ErrEmptyInput) {
		t.Fatalf("ModeOf(nil) err = %v", err)
	}
	if _, err := VarianceOf(nil); !errors.Is(err, ErrEmptyInput) {
		t.Fatalf("VarianceOf(nil) err = %v", err)
	}
	if _, err := CovarianceOf(nil, nil); !errors.Is(err, ErrEmptyInput) {
		t.Fatalf("CovarianceOf(nil,nil) err = %v", err)
	}
	if _, err := DotProductOf(nil, []float64{1}); !errors.Is(err, ErrEmptyInput) {
		t.Fatalf("DotProductOf err = %v", err)
	}
	if _, err := NormalizerOf(Correlation, nil, nil); !errors.Is(err, ErrEmptyInput) {
		t.Fatalf("NormalizerOf err = %v", err)
	}
}

func TestLengthMismatchErrors(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{1, 2}
	if _, err := CovarianceOf(a, b); !errors.Is(err, ErrLengthMismatch) {
		t.Fatalf("CovarianceOf err = %v", err)
	}
	if _, err := DotProductOf(a, b); !errors.Is(err, ErrLengthMismatch) {
		t.Fatalf("DotProductOf err = %v", err)
	}
	if _, err := NormalizerOf(Cosine, a, b); !errors.Is(err, ErrLengthMismatch) {
		t.Fatalf("NormalizerOf err = %v", err)
	}
}

func TestVarianceCovariance(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	v, err := VarianceOf(x)
	if err != nil || !almostEqual(v, 2.5, 1e-12) {
		t.Fatalf("VarianceOf = %v, %v", v, err)
	}
	single, err := VarianceOf([]float64{7})
	if err != nil || single != 0 {
		t.Fatalf("VarianceOf single = %v, %v", single, err)
	}

	y := []float64{2, 4, 6, 8, 10}
	cov, err := CovarianceOf(x, y)
	if err != nil || !almostEqual(cov, 5, 1e-12) {
		t.Fatalf("CovarianceOf = %v, %v", cov, err)
	}
	covSingle, err := CovarianceOf([]float64{1}, []float64{2})
	if err != nil || covSingle != 0 {
		t.Fatalf("CovarianceOf single = %v, %v", covSingle, err)
	}
	// Cov(x,x) == Var(x).
	covXX, _ := CovarianceOf(x, x)
	if !almostEqual(covXX, v, 1e-12) {
		t.Fatalf("Cov(x,x)=%v != Var(x)=%v", covXX, v)
	}
}

func TestDotProductAndSum(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{4, 5, 6}
	dot, err := DotProductOf(x, y)
	if err != nil || dot != 32 {
		t.Fatalf("DotProductOf = %v, %v", dot, err)
	}
	if SumOf(x) != 6 {
		t.Fatalf("SumOf = %v", SumOf(x))
	}
	if SumOf(nil) != 0 {
		t.Fatalf("SumOf(nil) = %v", SumOf(nil))
	}
}

func TestCorrelation(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}

	// Perfect positive and negative correlation.
	pos, err := CorrelationOf(x, []float64{2, 4, 6, 8, 10})
	if err != nil || !almostEqual(pos, 1, 1e-12) {
		t.Fatalf("positive correlation = %v, %v", pos, err)
	}
	neg, err := CorrelationOf(x, []float64{10, 8, 6, 4, 2})
	if err != nil || !almostEqual(neg, -1, 1e-12) {
		t.Fatalf("negative correlation = %v, %v", neg, err)
	}

	// Constant series: zero normalizer.
	if _, err := CorrelationOf(x, []float64{3, 3, 3, 3, 3}); !errors.Is(err, ErrZeroNormalizer) {
		t.Fatalf("constant series err = %v", err)
	}
}

func TestCorrelationClamping(t *testing.T) {
	// Affine copies can produce |rho| marginally above 1 in floating point;
	// verify the clamp by checking the result is exactly within [-1, 1].
	rng := rand.New(rand.NewSource(44))
	for trial := 0; trial < 50; trial++ {
		x := make([]float64, 50)
		y := make([]float64, 50)
		a := rng.NormFloat64()
		b := rng.NormFloat64()
		for i := range x {
			x[i] = rng.NormFloat64() * 1e6
			y[i] = a*x[i] + b
		}
		if a == 0 {
			continue
		}
		r, err := CorrelationOf(x, y)
		if err != nil {
			t.Fatalf("CorrelationOf: %v", err)
		}
		if r > 1 || r < -1 {
			t.Fatalf("correlation out of range: %v", r)
		}
	}
}

func TestDerivedDotProductMeasures(t *testing.T) {
	x := []float64{1, 0, 1, 0}
	y := []float64{1, 1, 0, 0}
	// dot = 1, |x|^2 = 2, |y|^2 = 2.
	cos, err := CosineOf(x, y)
	if err != nil || !almostEqual(cos, 0.5, 1e-12) {
		t.Fatalf("CosineOf = %v, %v", cos, err)
	}
	jac, err := JaccardOf(x, y)
	if err != nil || !almostEqual(jac, 1.0/3.0, 1e-12) {
		t.Fatalf("JaccardOf = %v, %v", jac, err)
	}
	dice, err := DiceOf(x, y)
	if err != nil || !almostEqual(dice, 0.5, 1e-12) {
		t.Fatalf("DiceOf = %v, %v", dice, err)
	}
	hm, err := HarmonicMeanOf(x, y)
	if err != nil || !almostEqual(hm, 1.0, 1e-12) {
		t.Fatalf("HarmonicMeanOf = %v, %v", hm, err)
	}

	// Self-similarity should be 1 for cosine, Jaccard and Dice.
	for _, f := range []func(a, b []float64) (float64, error){CosineOf, JaccardOf, DiceOf} {
		v, err := f(x, x)
		if err != nil || !almostEqual(v, 1, 1e-12) {
			t.Fatalf("self similarity = %v, %v", v, err)
		}
	}

	// Zero vectors have zero normalizers.
	z := []float64{0, 0, 0, 0}
	if _, err := CosineOf(z, z); !errors.Is(err, ErrZeroNormalizer) {
		t.Fatalf("zero-vector cosine err = %v", err)
	}
}

func TestComputeLocationDispatch(t *testing.T) {
	x := []float64{5, 1, 1, 3}
	for _, tc := range []struct {
		m    Measure
		want float64
	}{
		{Mean, 2.5},
		{Median, 2},
		{Mode, 1},
	} {
		got, err := ComputeLocation(tc.m, x)
		if err != nil || !almostEqual(got, tc.want, 1e-9) {
			t.Fatalf("ComputeLocation(%v) = %v, %v; want %v", tc.m, got, err, tc.want)
		}
	}
	if _, err := ComputeLocation(Covariance, x); !errors.Is(err, ErrUnknownMeasure) {
		t.Fatalf("ComputeLocation(Covariance) err = %v", err)
	}
}

func TestComputePairDispatch(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{2, 4, 5, 9}
	for _, m := range append(TMeasures(), DMeasures()...) {
		if _, err := ComputePair(m, x, y); err != nil {
			t.Fatalf("ComputePair(%v): %v", m, err)
		}
	}
	if _, err := ComputePair(Mean, x, y); !errors.Is(err, ErrUnknownMeasure) {
		t.Fatalf("ComputePair(Mean) err = %v", err)
	}
}

func TestNormalizerUnknownMeasure(t *testing.T) {
	if _, err := NormalizerOf(Measure(99), []float64{1}, []float64{1}); !errors.Is(err, ErrUnknownMeasure) {
		t.Fatalf("unknown measure err = %v", err)
	}
	// L- and T-measures have normalizer 1.
	for _, m := range []Measure{Mean, Covariance, DotProduct} {
		n, err := NormalizerOf(m, []float64{1, 2}, []float64{3, 4})
		if err != nil || n != 1 {
			t.Fatalf("NormalizerOf(%v) = %v, %v", m, n, err)
		}
	}
}

// Property: correlation is invariant under positive affine transformations of
// either argument and flips sign for negative scalings.
func TestCorrelationAffineInvarianceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(40)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
			y[i] = rng.NormFloat64() + 0.5*x[i]
		}
		scale := 0.5 + rng.Float64()*3
		shift := rng.NormFloat64() * 10
		scaled := make([]float64, n)
		for i := range x {
			scaled[i] = scale*x[i] + shift
		}
		r1, err1 := CorrelationOf(x, y)
		r2, err2 := CorrelationOf(scaled, y)
		if err1 != nil || err2 != nil {
			return true // degenerate draw (constant series), skip
		}
		if !almostEqual(r1, r2, 1e-9) {
			return false
		}
		negated := make([]float64, n)
		for i := range x {
			negated[i] = -scale*x[i] + shift
		}
		r3, err3 := CorrelationOf(negated, y)
		if err3 != nil {
			return true
		}
		return almostEqual(r1, -r3, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: Cauchy–Schwarz — |dot(x,y)| <= |x|·|y| and hence |cosine| <= 1.
func TestCosineBoundedProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
			y[i] = rng.NormFloat64()
		}
		c, err := CosineOf(x, y)
		if err != nil {
			return true
		}
		return c <= 1+1e-12 && c >= -1-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: symmetry of all pairwise measures.
func TestPairwiseSymmetryProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(20)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
			y[i] = rng.NormFloat64()
		}
		for _, m := range append(TMeasures(), DMeasures()...) {
			a, errA := ComputePair(m, x, y)
			b, errB := ComputePair(m, y, x)
			if (errA == nil) != (errB == nil) {
				return false
			}
			if errA == nil && !almostEqual(a, b, 1e-9*(1+math.Abs(a))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
