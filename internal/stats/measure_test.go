package stats

import (
	"errors"
	"testing"
)

func TestMeasureStringAndParse(t *testing.T) {
	for _, m := range AllMeasures() {
		name := m.String()
		if name == "" {
			t.Fatalf("measure %d has empty name", int(m))
		}
		parsed, err := ParseMeasure(name)
		if err != nil {
			t.Fatalf("ParseMeasure(%q): %v", name, err)
		}
		if parsed != m {
			t.Fatalf("ParseMeasure(%q) = %v, want %v", name, parsed, m)
		}
	}
	if _, err := ParseMeasure("nope"); !errors.Is(err, ErrUnknownMeasure) {
		t.Fatalf("ParseMeasure(nope) err = %v", err)
	}
	if Measure(99).String() == "" {
		t.Fatal("out-of-range measure should still render a string")
	}
}

func TestMeasureClasses(t *testing.T) {
	classes := map[Measure]Class{
		Mean: LocationClass, Median: LocationClass, Mode: LocationClass,
		Covariance: DispersionClass, DotProduct: DispersionClass,
		Correlation: DerivedClass, Cosine: DerivedClass, Jaccard: DerivedClass,
		Dice: DerivedClass, HarmonicMean: DerivedClass,
		EuclideanDistance: DerivedClass, MeanSquaredDifference: DerivedClass,
		AngularDistance: DerivedClass,
	}
	for m, want := range classes {
		if got := m.Class(); got != want {
			t.Fatalf("%v.Class() = %v, want %v", m, got, want)
		}
	}
	if LocationClass.String() != "L" || DispersionClass.String() != "T" || DerivedClass.String() != "D" {
		t.Fatal("class names are wrong")
	}
	if Class(42).String() == "" {
		t.Fatal("unknown class should render something")
	}
}

func TestMeasurePairwiseAndValid(t *testing.T) {
	if Mean.Pairwise() || Median.Pairwise() || Mode.Pairwise() {
		t.Fatal("L-measures are not pairwise")
	}
	for _, m := range append(TMeasures(), DMeasures()...) {
		if !m.Pairwise() {
			t.Fatalf("%v should be pairwise", m)
		}
	}
	if !Mean.Valid() || Measure(-1).Valid() || Measure(len(AllMeasures())).Valid() {
		t.Fatal("Valid() is wrong")
	}
}

func TestMeasureBase(t *testing.T) {
	if Correlation.Base() != Covariance {
		t.Fatal("correlation base should be covariance")
	}
	for _, m := range []Measure{
		Cosine, Jaccard, Dice, HarmonicMean,
		EuclideanDistance, MeanSquaredDifference, AngularDistance,
	} {
		if m.Base() != DotProduct {
			t.Fatalf("%v base should be dot product", m)
		}
	}
	for _, m := range []Measure{Mean, Median, Mode, Covariance, DotProduct} {
		if m.Base() != m {
			t.Fatalf("%v base should be itself", m)
		}
	}
}

func TestMeasureGroupHelpers(t *testing.T) {
	if len(LMeasures()) != 3 || len(TMeasures()) != 2 || len(DMeasures()) != 8 {
		t.Fatal("measure group sizes are wrong")
	}
	total := len(LMeasures()) + len(TMeasures()) + len(DMeasures())
	if total != len(AllMeasures()) {
		t.Fatalf("groups cover %d measures, want %d", total, len(AllMeasures()))
	}
	if len(MeasureNames()) != len(AllMeasures()) {
		t.Fatal("MeasureNames drifted from AllMeasures")
	}
}
