// Package stats implements the statistical measures supported by the
// Affinity framework and their naive (from scratch) computation.
//
// Following Section 2.1 of the paper, measures are grouped into three
// classes:
//
//   - L-measures (location): mean, median, mode — defined per series;
//   - T-measures (dispersion): covariance, dot product — defined per pair of
//     series;
//   - D-measures (derived): monotone transforms of a base T-measure under a
//     separable parameter — the correlation coefficient, the dot-product
//     similarity family (cosine, Jaccard, Dice, harmonic mean) and the
//     distance family (Euclidean, mean squared difference, angular).
//
// The measures themselves are declared in internal/measure as registry-backed
// Specs; this package re-exports the identities and evaluates them naively
// from raw series (the paper's W_N method).  Code that needs the full
// declarative spec (capability flags, transforms, moments) imports
// internal/measure directly.
package stats

import (
	"affinity/internal/measure"
)

// Measure identifies one of the statistical measures supported by Affinity.
type Measure = measure.Measure

// The supported measures (see internal/measure for the registry).
const (
	// L-measures.
	Mean   = measure.Mean
	Median = measure.Median
	Mode   = measure.Mode

	// T-measures.
	Covariance = measure.Covariance
	DotProduct = measure.DotProduct

	// D-measures.
	Correlation  = measure.Correlation
	Cosine       = measure.Cosine
	Jaccard      = measure.Jaccard
	Dice         = measure.Dice
	HarmonicMean = measure.HarmonicMean

	// Distance D-measures (monotone-decreasing transforms).
	EuclideanDistance     = measure.EuclideanDistance
	MeanSquaredDifference = measure.MeanSquaredDifference
	AngularDistance       = measure.AngularDistance
)

// Class describes the family a measure belongs to.
type Class = measure.Class

// The three classes of measures from Section 2.1.
const (
	LocationClass   = measure.LocationClass
	DispersionClass = measure.DispersionClass
	DerivedClass    = measure.DerivedClass
)

// Shared measure errors, aliased from the measure registry.
var (
	// ErrUnknownMeasure is returned when a Measure value is out of range.
	ErrUnknownMeasure = measure.ErrUnknownMeasure
	// ErrEmptyInput is returned when a computation receives no samples.
	ErrEmptyInput = measure.ErrEmptyInput
	// ErrLengthMismatch is returned when a pairwise measure receives series of
	// different lengths.
	ErrLengthMismatch = measure.ErrLengthMismatch
	// ErrZeroNormalizer is returned when a derived measure would divide by a
	// zero normalizer (e.g. correlation of a constant series).
	ErrZeroNormalizer = measure.ErrZeroNormalizer
)

// ParseMeasure converts a measure name (as produced by String) back to a
// Measure value with one registry map lookup.
func ParseMeasure(name string) (Measure, error) { return measure.Parse(name) }

// MeasureNames returns the names of every registered measure in registration
// order, for CLI flag help and generated documentation.
func MeasureNames() []string { return measure.Names() }

// AllMeasures returns every registered measure, useful for exhaustive tests
// and for workload generators.
func AllMeasures() []Measure { return measure.All() }

// LMeasures returns the registered location measures.
func LMeasures() []Measure { return measure.ByClass(measure.LocationClass) }

// TMeasures returns the registered dispersion measures.
func TMeasures() []Measure { return measure.ByClass(measure.DispersionClass) }

// DMeasures returns the registered derived measures.
func DMeasures() []Measure { return measure.ByClass(measure.DerivedClass) }

// OrNaN re-exports measure.OrNaN, the single definition of the engine's NaN
// semantics for undefined (zero-normalizer) measure values.
func OrNaN(v float64, err error) (float64, error) { return measure.OrNaN(v, err) }
