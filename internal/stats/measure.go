// Package stats implements the statistical measures supported by the
// Affinity framework and their naive (from scratch) computation.
//
// Following Section 2.1 of the paper, measures are grouped into three
// classes:
//
//   - L-measures (location): mean, median, mode — defined per series;
//   - T-measures (dispersion): covariance, dot product — defined per pair of
//     series;
//   - D-measures (derived): a T-measure divided by a separable normalizer —
//     correlation coefficient (covariance / sqrt(var·var)), and the dot
//     product derived family (cosine, Jaccard, Dice, harmonic mean).
package stats

import (
	"errors"
	"fmt"
)

// Measure identifies one of the statistical measures supported by Affinity.
type Measure int

// The supported measures.
const (
	// L-measures.
	Mean Measure = iota
	Median
	Mode

	// T-measures.
	Covariance
	DotProduct

	// D-measures.
	Correlation
	Cosine
	Jaccard
	Dice
	HarmonicMean

	numMeasures // sentinel, keep last
)

// Class describes the family a measure belongs to.
type Class int

// The three classes of measures from Section 2.1.
const (
	LocationClass   Class = iota // L-measures: per-series central tendency
	DispersionClass              // T-measures: pairwise variability
	DerivedClass                 // D-measures: normalized T-measures
)

// ErrUnknownMeasure is returned when a Measure value is out of range.
var ErrUnknownMeasure = errors.New("stats: unknown measure")

// ErrEmptyInput is returned when a computation receives no samples.
var ErrEmptyInput = errors.New("stats: empty input")

// ErrLengthMismatch is returned when a pairwise measure receives series of
// different lengths.
var ErrLengthMismatch = errors.New("stats: length mismatch")

// ErrZeroNormalizer is returned when a derived measure would divide by a zero
// normalizer (e.g. correlation of a constant series).
var ErrZeroNormalizer = errors.New("stats: zero normalizer")

// String returns the measure's name.
func (m Measure) String() string {
	switch m {
	case Mean:
		return "mean"
	case Median:
		return "median"
	case Mode:
		return "mode"
	case Covariance:
		return "covariance"
	case DotProduct:
		return "dot-product"
	case Correlation:
		return "correlation"
	case Cosine:
		return "cosine"
	case Jaccard:
		return "jaccard"
	case Dice:
		return "dice"
	case HarmonicMean:
		return "harmonic-mean"
	default:
		return fmt.Sprintf("measure(%d)", int(m))
	}
}

// ParseMeasure converts a measure name (as produced by String) back to a
// Measure value.
func ParseMeasure(name string) (Measure, error) {
	for m := Measure(0); m < numMeasures; m++ {
		if m.String() == name {
			return m, nil
		}
	}
	return 0, fmt.Errorf("%w: %q", ErrUnknownMeasure, name)
}

// Valid reports whether m is one of the defined measures.
func (m Measure) Valid() bool { return m >= 0 && m < numMeasures }

// Class returns the measure's class (L, T or D).
func (m Measure) Class() Class {
	switch m {
	case Mean, Median, Mode:
		return LocationClass
	case Covariance, DotProduct:
		return DispersionClass
	default:
		return DerivedClass
	}
}

// Pairwise reports whether the measure is defined on a pair of series
// (T- and D-measures) rather than a single series (L-measures).
func (m Measure) Pairwise() bool { return m.Class() != LocationClass }

// Base returns, for a D-measure, the underlying T-measure that is normalized
// to obtain it (Section 2.1: "derived by normalizing a dispersion measure").
// For L- and T-measures it returns the measure itself.
func (m Measure) Base() Measure {
	switch m {
	case Correlation:
		return Covariance
	case Cosine, Jaccard, Dice, HarmonicMean:
		return DotProduct
	default:
		return m
	}
}

// AllMeasures returns every supported measure, useful for exhaustive tests
// and for workload generators.
func AllMeasures() []Measure {
	out := make([]Measure, 0, int(numMeasures))
	for m := Measure(0); m < numMeasures; m++ {
		out = append(out, m)
	}
	return out
}

// LMeasures returns the supported location measures.
func LMeasures() []Measure { return []Measure{Mean, Median, Mode} }

// TMeasures returns the supported dispersion measures.
func TMeasures() []Measure { return []Measure{Covariance, DotProduct} }

// DMeasures returns the supported derived measures.
func DMeasures() []Measure {
	return []Measure{Correlation, Cosine, Jaccard, Dice, HarmonicMean}
}

// String returns the class name.
func (c Class) String() string {
	switch c {
	case LocationClass:
		return "L"
	case DispersionClass:
		return "T"
	case DerivedClass:
		return "D"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}
