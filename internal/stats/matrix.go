package stats

import (
	"errors"
	"fmt"
	"math"

	"affinity/internal/mat"
	"affinity/internal/timeseries"
)

// This file contains the "from scratch" (naive, W_N) computation of the
// measure vectors/matrices L(S), T(S) and D(S) over a data matrix.  These are
// used as the baseline in the paper's experiments and as the ground truth in
// accuracy tests.

// LocationVector computes an L-measure for every series in the data matrix
// and returns the vector L(S) of length n.
func LocationVector(m Measure, d *timeseries.DataMatrix) ([]float64, error) {
	if m.Class() != LocationClass {
		return nil, fmt.Errorf("%w: %v is not an L-measure", ErrUnknownMeasure, m)
	}
	out := make([]float64, d.NumSeries())
	for _, id := range d.IDs() {
		s, err := d.Series(id)
		if err != nil {
			return nil, err
		}
		v, err := ComputeLocation(m, s)
		if err != nil {
			return nil, fmt.Errorf("series %d: %w", id, err)
		}
		out[id] = v
	}
	return out, nil
}

// PairwiseMatrix computes a T- or D-measure for every pair of series and
// returns the symmetric n-by-n matrix T(S) or D(S).  The diagonal holds the
// measure of each series with itself (variance for covariance, 1 for
// correlation, etc.).
//
// Derived measures that are undefined for a pair (zero normalizer, e.g. the
// correlation against a constant series) are recorded as 0 rather than
// aborting the whole matrix; callers that need strict behaviour should use
// ComputePair directly.
func PairwiseMatrix(m Measure, d *timeseries.DataMatrix) (*mat.Matrix, error) {
	if !m.Pairwise() {
		return nil, fmt.Errorf("%w: %v is not a pairwise measure", ErrUnknownMeasure, m)
	}
	n := d.NumSeries()
	out := mat.New(n, n)
	for u := 0; u < n; u++ {
		su, err := d.Series(timeseries.SeriesID(u))
		if err != nil {
			return nil, err
		}
		for v := u; v < n; v++ {
			sv, err := d.Series(timeseries.SeriesID(v))
			if err != nil {
				return nil, err
			}
			val, err := ComputePair(m, su, sv)
			if err != nil {
				if !errors.Is(err, ErrZeroNormalizer) {
					return nil, fmt.Errorf("pair (%d,%d): %w", u, v, err)
				}
				val = 0
			}
			out.Set(u, v, val)
			out.Set(v, u, val)
		}
	}
	return out, nil
}

// CovarianceMatrix returns the n-by-n sample covariance matrix Σ(S).
func CovarianceMatrix(d *timeseries.DataMatrix) (*mat.Matrix, error) {
	return PairwiseMatrix(Covariance, d)
}

// DotProductMatrix returns the n-by-n dot product matrix Π(S).
func DotProductMatrix(d *timeseries.DataMatrix) (*mat.Matrix, error) {
	return PairwiseMatrix(DotProduct, d)
}

// CorrelationMatrix returns the n-by-n Pearson correlation matrix ρ(S).
func CorrelationMatrix(d *timeseries.DataMatrix) (*mat.Matrix, error) {
	return PairwiseMatrix(Correlation, d)
}

// PairMeasure computes a pairwise measure for a single sequence pair directly
// from the data matrix.
func PairMeasure(m Measure, d *timeseries.DataMatrix, e timeseries.Pair) (float64, error) {
	su, err := d.Series(e.U)
	if err != nil {
		return 0, err
	}
	sv, err := d.Series(e.V)
	if err != nil {
		return 0, err
	}
	return ComputePair(m, su, sv)
}

// PairMatrixCovariance computes the 2-by-2 covariance matrix Σ(X) of an
// m-by-2 pair matrix X (Eq. 2 of the paper).
func PairMatrixCovariance(x *mat.Matrix) (*mat.Matrix, error) {
	if x.Cols() != 2 {
		return nil, fmt.Errorf("%w: pair matrix must have 2 columns, got %d", ErrLengthMismatch, x.Cols())
	}
	c0 := x.Col(0)
	c1 := x.Col(1)
	v0, err := VarianceOf(c0)
	if err != nil {
		return nil, err
	}
	v1, err := VarianceOf(c1)
	if err != nil {
		return nil, err
	}
	cov, err := CovarianceOf(c0, c1)
	if err != nil {
		return nil, err
	}
	out := mat.New(2, 2)
	out.Set(0, 0, v0)
	out.Set(0, 1, cov)
	out.Set(1, 0, cov)
	out.Set(1, 1, v1)
	return out, nil
}

// PairMatrixDotProduct computes the 2-by-2 dot product (Gram) matrix Π(X) of
// an m-by-2 pair matrix X.
func PairMatrixDotProduct(x *mat.Matrix) (*mat.Matrix, error) {
	if x.Cols() != 2 {
		return nil, fmt.Errorf("%w: pair matrix must have 2 columns, got %d", ErrLengthMismatch, x.Cols())
	}
	c0 := x.Col(0)
	c1 := x.Col(1)
	d00, _ := DotProductOf(c0, c0)
	d01, _ := DotProductOf(c0, c1)
	d11, _ := DotProductOf(c1, c1)
	out := mat.New(2, 2)
	out.Set(0, 0, d00)
	out.Set(0, 1, d01)
	out.Set(1, 0, d01)
	out.Set(1, 1, d11)
	return out, nil
}

// PairMatrixLocation computes the length-2 vector of an L-measure for the two
// columns of a pair matrix.
func PairMatrixLocation(m Measure, x *mat.Matrix) ([]float64, error) {
	if x.Cols() != 2 {
		return nil, fmt.Errorf("%w: pair matrix must have 2 columns, got %d", ErrLengthMismatch, x.Cols())
	}
	l0, err := ComputeLocation(m, x.Col(0))
	if err != nil {
		return nil, err
	}
	l1, err := ComputeLocation(m, x.Col(1))
	if err != nil {
		return nil, err
	}
	return []float64{l0, l1}, nil
}

// ColumnSums returns (h1(X), h2(X)): the per-column sums of a pair matrix,
// used by the dot product propagation rule (Eq. 7).
func ColumnSums(x *mat.Matrix) ([]float64, error) {
	if x.Cols() != 2 {
		return nil, fmt.Errorf("%w: pair matrix must have 2 columns, got %d", ErrLengthMismatch, x.Cols())
	}
	return []float64{SumOf(x.Col(0)), SumOf(x.Col(1))}, nil
}

// RMSE computes the percentage root-mean-square error between true and
// approximated values after normalizing both by (max(true) - min(true)),
// exactly as defined in Eq. 16 of the paper.  It returns 0 for empty input
// and treats a zero range as an exact match check.
func RMSE(truth, approx []float64) (float64, error) {
	if len(truth) != len(approx) {
		return 0, fmt.Errorf("%w: %d vs %d", ErrLengthMismatch, len(truth), len(approx))
	}
	if len(truth) == 0 {
		return 0, nil
	}
	minV, maxV := truth[0], truth[0]
	for _, v := range truth {
		if v < minV {
			minV = v
		}
		if v > maxV {
			maxV = v
		}
	}
	rangeV := maxV - minV
	var sum float64
	for i := range truth {
		var diff float64
		if rangeV == 0 {
			diff = truth[i] - approx[i]
		} else {
			diff = (truth[i] - approx[i]) / rangeV
		}
		sum += diff * diff
	}
	return 100 * math.Sqrt(sum/float64(len(truth))), nil
}
