package symex

import (
	"fmt"
	"sort"

	"affinity/internal/timeseries"
)

// This file implements the streaming half of SYMEX+: re-fitting affine
// relationships after the data window slid, without re-running the
// exploration phase.  The pair→pivot assignment is a function of n and the
// cluster membership ω only, so as long as the clustering is held fixed
// (the streaming engine's policy between re-clusterings) the assignment from
// the original Compute run stays valid and only the least-squares fits have
// to be redone.
//
// Refit takes a staleness set: only relationships whose pair is in the set
// are re-fitted against the new window; the rest are carried over unchanged
// (transforms are immutable, so old and new results share them).  Passing a
// nil set refits everything, which reproduces exactly what Compute would
// produce on the new window with the same clustering.

// RefitOptions configures Refit.
type RefitOptions struct {
	// Stale is the set of sequence pairs whose relationship must be
	// re-fitted.  Nil means every assignment is stale (full refit).
	Stale map[timeseries.Pair]bool
	// Parallelism fans the least-squares fits out over worker goroutines
	// (0 or 1 = sequential), exactly like Options.Parallelism.
	Parallelism int
	// MaxLSFD re-applies the relationship pruning bound to re-fitted
	// relationships.  Zero disables pruning (and revives previously pruned
	// pairs on refit).  Carried-over relationships keep their previous
	// pruning outcome.
	MaxLSFD float64
}

// RefitStats reports the work a Refit run performed.
type RefitStats struct {
	// Refit is the number of relationships re-fitted against the new window.
	Refit int
	// Reused is the number of relationships carried over unchanged.
	Reused int
	// PivotInverses is the number of design-matrix pseudo-inverses
	// recomputed (one per pivot with at least one stale relationship).
	PivotInverses int
	// Pruned is the number of re-fitted relationships dropped by MaxLSFD.
	Pruned int
}

// Refit produces a new Result over the (slid) data matrix d: stale
// relationships are re-fitted with fresh per-pivot pseudo-inverses, fresh
// ones are shared with prev.  The clustering and the pair→pivot assignment
// are taken from prev unchanged.
func Refit(d *timeseries.DataMatrix, prev *Result, opts RefitOptions) (*Result, RefitStats, error) {
	var rs RefitStats
	if err := d.Validate(); err != nil {
		return nil, rs, err
	}
	if prev == nil || prev.Clustering == nil {
		return nil, rs, fmt.Errorf("symex: refit needs a previous result with clustering")
	}
	if len(prev.Clustering.Centers) > 0 && len(prev.Clustering.Centers[0]) != d.NumSamples() {
		return nil, rs, fmt.Errorf("symex: cluster centers have %d samples, window has %d",
			len(prev.Clustering.Centers[0]), d.NumSamples())
	}
	assignments := prev.assignmentList()
	if len(assignments) == 0 {
		return nil, rs, fmt.Errorf("symex: previous result has no assignments to refit")
	}

	res := &Result{
		Relationships: make(map[timeseries.Pair]*Relationship, len(prev.Relationships)),
		Pivots:        make(map[Pivot][]timeseries.Pair, len(prev.Pivots)),
		Assignments:   make([]Assignment, 0, len(assignments)),
		Clustering:    prev.Clustering,
	}

	var staleAssign []assignment
	for _, a := range assignments {
		res.Assignments = append(res.Assignments, Assignment{Pair: a.pair, Pivot: a.pivot})
		if opts.Stale == nil || opts.Stale[a.pair] {
			staleAssign = append(staleAssign, a)
			continue
		}
		if r, ok := prev.Relationships[a.pair]; ok {
			res.Relationships[a.pair] = r
			res.Pivots[a.pivot] = append(res.Pivots[a.pivot], a.pair)
			rs.Reused++
		}
		// A carried-over pair with no previous relationship was pruned;
		// it stays pruned until its drift marks it stale again.
	}

	f := &fitter{
		data:       d,
		clustering: prev.Clustering,
		useCache:   true,
		maxLSFD:    opts.MaxLSFD,
	}
	fitted, err := f.fitAll(staleAssign, opts.Parallelism)
	if err != nil {
		return nil, rs, err
	}
	for _, fr := range fitted {
		if opts.MaxLSFD > 0 && fr.lsfd > opts.MaxLSFD {
			rs.Pruned++
			continue
		}
		res.Relationships[fr.rel.Pair] = fr.rel
		res.Pivots[fr.rel.Pivot] = append(res.Pivots[fr.rel.Pivot], fr.rel.Pair)
		rs.Refit++
	}
	rs.PivotInverses = len(f.distinctPivots)

	res.Stats.NumRelationships = len(res.Relationships)
	res.Stats.NumPivots = len(res.Pivots)
	res.Stats.PrunedRelationships = rs.Pruned
	res.Stats.PseudoInverseComputations = rs.PivotInverses
	if len(staleAssign) > rs.PivotInverses {
		res.Stats.PseudoInverseCacheHits = len(staleAssign) - rs.PivotInverses
	}
	return res, rs, nil
}

// AssignmentList returns the result's pair→pivot assignments, reconstructing
// them from the relationship map when the result predates assignment
// tracking (e.g. a decoded snapshot, which loses pruned pairs).  The
// reconstructed list is sorted for determinism.
func (r *Result) AssignmentList() []Assignment {
	if len(r.Assignments) > 0 {
		return r.Assignments
	}
	out := make([]Assignment, 0, len(r.Relationships))
	for pair, rel := range r.Relationships {
		out = append(out, Assignment{Pair: pair, Pivot: rel.Pivot})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pair.U != out[j].Pair.U {
			return out[i].Pair.U < out[j].Pair.U
		}
		return out[i].Pair.V < out[j].Pair.V
	})
	return out
}

// assignmentList returns AssignmentList converted to the internal record
// type used by the fitter.
func (r *Result) assignmentList() []assignment {
	list := r.AssignmentList()
	out := make([]assignment, len(list))
	for i, a := range list {
		out[i] = assignment{pair: a.Pair, pivot: a.Pivot, common: a.Pivot.Common}
	}
	return out
}
