package symex

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"affinity/internal/cluster"
	"affinity/internal/stats"
	"affinity/internal/timeseries"
)

// correlatedData generates n series in `groups` correlated groups with m
// samples, mimicking the structure AFCLST exploits.
func correlatedData(t testing.TB, seed int64, groups, n, m int, noise float64) *timeseries.DataMatrix {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	bases := make([][]float64, groups)
	for g := range bases {
		b := make([]float64, m)
		for i := range b {
			b[i] = math.Sin(float64(i)*0.02*float64(g+1)) + 0.3*math.Cos(float64(i)*0.07*float64(g+1))
		}
		bases[g] = b
	}
	series := make([][]float64, n)
	for s := range series {
		g := s % groups
		scale := 0.5 + rng.Float64()*2
		offset := rng.NormFloat64()
		col := make([]float64, m)
		for i := range col {
			col[i] = scale*bases[g][i] + offset + rng.NormFloat64()*noise
		}
		series[s] = col
	}
	d, err := timeseries.NewDataMatrix(series)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func defaultOptions() Options {
	return Options{
		Cluster:            cluster.Config{K: 3, MaxIterations: 10, MinChanges: 0, Seed: 1},
		CachePseudoInverse: true,
	}
}

func TestComputeCoversAllPairs(t *testing.T) {
	d := correlatedData(t, 1, 3, 14, 60, 0.01)
	res, err := Compute(d, defaultOptions())
	if err != nil {
		t.Fatalf("Compute: %v", err)
	}
	wantPairs := d.NumPairs()
	if len(res.Relationships) != wantPairs {
		t.Fatalf("relationships = %d, want %d", len(res.Relationships), wantPairs)
	}
	if res.Stats.NumRelationships != wantPairs {
		t.Fatalf("stats relationships = %d, want %d", res.Stats.NumRelationships, wantPairs)
	}
	// Every pair appears exactly once and is canonical.
	for e, rel := range res.Relationships {
		if !e.Valid() {
			t.Fatalf("non-canonical pair %v", e)
		}
		if rel.Pair != e {
			t.Fatalf("relationship pair %v stored under key %v", rel.Pair, e)
		}
		if rel.Transform == nil {
			t.Fatalf("nil transform for %v", e)
		}
		if !e.Contains(rel.Common()) || !e.Contains(rel.Other()) || rel.Common() == rel.Other() {
			t.Fatalf("common/other bookkeeping broken for %v: common=%d other=%d", e, rel.Common(), rel.Other())
		}
		if rel.Pivot.Common != rel.Common() {
			t.Fatalf("pivot common %d != relationship common %d", rel.Pivot.Common, rel.Common())
		}
	}
}

func TestComputePivotCountBound(t *testing.T) {
	d := correlatedData(t, 2, 4, 20, 50, 0.02)
	k := 4
	opts := defaultOptions()
	opts.Cluster.K = k
	res, err := Compute(d, opts)
	if err != nil {
		t.Fatal(err)
	}
	// The number of pivot pairs is bounded by n*k (Section 4).
	if res.Stats.NumPivots > d.NumSeries()*k {
		t.Fatalf("pivots = %d exceeds n*k = %d", res.Stats.NumPivots, d.NumSeries()*k)
	}
	if res.Stats.NumPivots == 0 {
		t.Fatal("no pivots generated")
	}
	// Pivot assignment lists must partition the pair set.
	seen := map[timeseries.Pair]bool{}
	total := 0
	for _, pairs := range res.Pivots {
		for _, e := range pairs {
			if seen[e] {
				t.Fatalf("pair %v assigned to two pivots", e)
			}
			seen[e] = true
			total++
		}
	}
	if total != len(res.Relationships) {
		t.Fatalf("pivot assignment covers %d pairs, want %d", total, len(res.Relationships))
	}
}

func TestCacheStatsDifferBetweenSymexAndSymexPlus(t *testing.T) {
	d := correlatedData(t, 3, 3, 16, 40, 0.02)

	plain := defaultOptions()
	plain.CachePseudoInverse = false
	resPlain, err := Compute(d, plain)
	if err != nil {
		t.Fatal(err)
	}
	if resPlain.Stats.PseudoInverseCacheHits != 0 {
		t.Fatalf("plain SYMEX should have no cache hits, got %d", resPlain.Stats.PseudoInverseCacheHits)
	}
	if resPlain.Stats.PseudoInverseComputations != resPlain.Stats.NumRelationships {
		t.Fatalf("plain SYMEX should compute one pseudo-inverse per relationship: %d vs %d",
			resPlain.Stats.PseudoInverseComputations, resPlain.Stats.NumRelationships)
	}

	cached := defaultOptions()
	resCached, err := Compute(d, cached)
	if err != nil {
		t.Fatal(err)
	}
	if resCached.Stats.PseudoInverseComputations != resCached.Stats.NumPivots {
		t.Fatalf("SYMEX+ should compute one pseudo-inverse per pivot: %d vs %d",
			resCached.Stats.PseudoInverseComputations, resCached.Stats.NumPivots)
	}
	if resCached.Stats.PseudoInverseCacheHits !=
		resCached.Stats.NumRelationships-resCached.Stats.NumPivots {
		t.Fatalf("cache hits = %d, want %d", resCached.Stats.PseudoInverseCacheHits,
			resCached.Stats.NumRelationships-resCached.Stats.NumPivots)
	}
	if resCached.Stats.PseudoInverseComputations >= resPlain.Stats.PseudoInverseComputations {
		t.Fatal("SYMEX+ should compute strictly fewer pseudo-inverses than SYMEX")
	}

	// Both variants must produce identical relationships (same clustering
	// seed, same exploration order).
	if len(resPlain.Relationships) != len(resCached.Relationships) {
		t.Fatal("SYMEX and SYMEX+ disagree on the number of relationships")
	}
	for e, a := range resPlain.Relationships {
		b, ok := resCached.Relationships[e]
		if !ok {
			t.Fatalf("pair %v missing from SYMEX+ result", e)
		}
		if a.Pivot != b.Pivot || a.Flipped != b.Flipped {
			t.Fatalf("pair %v: pivot/orientation mismatch", e)
		}
		if !a.Transform.A.Equal(b.Transform.A, 1e-9) {
			t.Fatalf("pair %v: transforms differ", e)
		}
	}
}

func TestMaxRelationshipsLimit(t *testing.T) {
	d := correlatedData(t, 4, 3, 20, 40, 0.02)
	opts := defaultOptions()
	opts.MaxRelationships = 25
	res, err := Compute(d, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Relationships) != 25 {
		t.Fatalf("limited run produced %d relationships, want 25", len(res.Relationships))
	}
}

func TestRelationshipAccuracyOnCorrelatedData(t *testing.T) {
	// With tightly correlated groups the affine relationships must estimate
	// the covariance of every pair with small relative RMSE (this mirrors the
	// Fig. 9/10 accuracy claims at a small scale).
	d := correlatedData(t, 5, 3, 18, 120, 0.01)
	res, err := Compute(d, defaultOptions())
	if err != nil {
		t.Fatal(err)
	}

	var truth, approx []float64
	for e, rel := range res.Relationships {
		op, err := res.PivotMatrix(d, rel.Pivot)
		if err != nil {
			t.Fatal(err)
		}
		covOp, err := stats.PairMatrixCovariance(op)
		if err != nil {
			t.Fatal(err)
		}
		est, err := rel.Transform.PropagateCovariance(covOp)
		if err != nil {
			t.Fatal(err)
		}
		want, err := stats.PairMeasure(stats.Covariance, d, e)
		if err != nil {
			t.Fatal(err)
		}
		truth = append(truth, want)
		approx = append(approx, est)
	}
	rmse, err := stats.RMSE(truth, approx)
	if err != nil {
		t.Fatal(err)
	}
	if rmse > 5 {
		t.Fatalf("covariance RMSE %.2f%% too high for strongly correlated data", rmse)
	}
}

func TestComputeReusesProvidedClustering(t *testing.T) {
	d := correlatedData(t, 6, 2, 10, 30, 0.02)
	clustering, err := cluster.Run(d, cluster.Config{K: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Clustering: clustering, CachePseudoInverse: true}
	res, err := Compute(d, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Clustering != clustering {
		t.Fatal("provided clustering should be reused")
	}
}

func TestComputeErrors(t *testing.T) {
	single, _ := timeseries.NewDataMatrix([][]float64{{1, 2, 3}})
	if _, err := Compute(single, defaultOptions()); !errors.Is(err, ErrTooFewSeries) {
		t.Fatalf("single series err = %v", err)
	}
	empty := &timeseries.DataMatrix{}
	if _, err := Compute(empty, defaultOptions()); err == nil {
		t.Fatal("empty data should error")
	}
	d := correlatedData(t, 7, 2, 6, 20, 0.02)
	bad := Options{Cluster: cluster.Config{K: 0}}
	if _, err := Compute(d, bad); err == nil {
		t.Fatal("invalid cluster config should error")
	}
}

func TestComputeSmallestValidInput(t *testing.T) {
	d := correlatedData(t, 8, 1, 2, 15, 0.01)
	opts := Options{Cluster: cluster.Config{K: 1, Seed: 1}, CachePseudoInverse: true}
	res, err := Compute(d, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Relationships) != 1 {
		t.Fatalf("n=2 should yield exactly one relationship, got %d", len(res.Relationships))
	}
}

func TestPivotMatrixErrors(t *testing.T) {
	d := correlatedData(t, 9, 2, 8, 25, 0.02)
	res, err := Compute(d, defaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.PivotMatrix(d, Pivot{Common: 0, Cluster: 99}); err == nil {
		t.Fatal("unknown cluster should error")
	}
	if _, err := res.PivotMatrix(d, Pivot{Common: 99, Cluster: 0}); err == nil {
		t.Fatal("unknown series should error")
	}
	var anyPivot Pivot
	for p := range res.Pivots {
		anyPivot = p
		break
	}
	op, err := res.PivotMatrix(d, anyPivot)
	if err != nil {
		t.Fatal(err)
	}
	if op.Rows() != d.NumSamples() || op.Cols() != 2 {
		t.Fatalf("pivot matrix dims %dx%d", op.Rows(), op.Cols())
	}
	if anyPivot.String() == "" {
		t.Fatal("Pivot.String should render")
	}
}

func TestRelationshipLookup(t *testing.T) {
	d := correlatedData(t, 10, 2, 8, 25, 0.02)
	res, err := Compute(d, defaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.Relationship(timeseries.Pair{U: 0, V: 1}); !ok {
		t.Fatal("existing pair should be found")
	}
	if _, ok := res.Relationship(timeseries.Pair{U: 0, V: 99}); ok {
		t.Fatal("missing pair should not be found")
	}
}
