package symex

import (
	"errors"
	"testing"

	"affinity/internal/cluster"
	"affinity/internal/lsfd"
	"affinity/internal/mat"
	"affinity/internal/timeseries"
)

func TestParallelMatchesSequential(t *testing.T) {
	d := correlatedData(t, 20, 3, 18, 60, 0.02)
	clustering, err := cluster.Run(d, cluster.Config{K: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	sequential, err := Compute(d, Options{Clustering: clustering, CachePseudoInverse: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 16} {
		parallel, err := Compute(d, Options{
			Clustering:         clustering,
			CachePseudoInverse: true,
			Parallelism:        workers,
		})
		if err != nil {
			t.Fatalf("parallelism %d: %v", workers, err)
		}
		if len(parallel.Relationships) != len(sequential.Relationships) {
			t.Fatalf("parallelism %d: %d relationships, want %d",
				workers, len(parallel.Relationships), len(sequential.Relationships))
		}
		if parallel.Stats != sequential.Stats {
			t.Fatalf("parallelism %d: stats %+v differ from sequential %+v",
				workers, parallel.Stats, sequential.Stats)
		}
		for e, seq := range sequential.Relationships {
			par, ok := parallel.Relationships[e]
			if !ok {
				t.Fatalf("parallelism %d: pair %v missing", workers, e)
			}
			if par.Pivot != seq.Pivot || par.Flipped != seq.Flipped {
				t.Fatalf("parallelism %d: pair %v bookkeeping differs", workers, e)
			}
			if !par.Transform.A.Equal(seq.Transform.A, 1e-12) ||
				par.Transform.B != seq.Transform.B {
				t.Fatalf("parallelism %d: pair %v transform differs", workers, e)
			}
		}
	}
	// Parallelism larger than the work count must also be fine.
	tiny := correlatedData(t, 21, 1, 3, 30, 0.02)
	if _, err := Compute(tiny, Options{
		Cluster:            cluster.Config{K: 1, Seed: 1},
		CachePseudoInverse: true,
		Parallelism:        64,
	}); err != nil {
		t.Fatal(err)
	}
}

func TestParallelWithoutCache(t *testing.T) {
	d := correlatedData(t, 22, 2, 10, 40, 0.02)
	clustering, err := cluster.Run(d, cluster.Config{K: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := Compute(d, Options{Clustering: clustering})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Compute(d, Options{Clustering: clustering, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if seq.Stats.PseudoInverseComputations != par.Stats.PseudoInverseComputations {
		t.Fatalf("pseudo-inverse counts differ: %d vs %d",
			seq.Stats.PseudoInverseComputations, par.Stats.PseudoInverseComputations)
	}
	if par.Stats.PseudoInverseCacheHits != 0 {
		t.Fatal("no cache hits expected without the cache")
	}
}

func TestMaxLSFDPruning(t *testing.T) {
	d := correlatedData(t, 23, 3, 15, 80, 0.05)
	clustering, err := cluster.Run(d, cluster.Config{K: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	unpruned, err := Compute(d, Options{Clustering: clustering, CachePseudoInverse: true})
	if err != nil {
		t.Fatal(err)
	}

	// A generous bound keeps everything.
	loose, err := Compute(d, Options{Clustering: clustering, CachePseudoInverse: true, MaxLSFD: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	if loose.Stats.PrunedRelationships != 0 ||
		len(loose.Relationships) != len(unpruned.Relationships) {
		t.Fatalf("loose bound pruned %d relationships", loose.Stats.PrunedRelationships)
	}

	// A very tight bound prunes something (noisy pairs cannot be represented
	// exactly) but never everything on clustered data.
	tight, err := Compute(d, Options{Clustering: clustering, CachePseudoInverse: true, MaxLSFD: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	if tight.Stats.PrunedRelationships == 0 {
		t.Fatal("tight bound should prune relationships on noisy data")
	}
	if len(tight.Relationships)+tight.Stats.PrunedRelationships != len(unpruned.Relationships) {
		t.Fatalf("pruned + kept = %d, want %d",
			len(tight.Relationships)+tight.Stats.PrunedRelationships, len(unpruned.Relationships))
	}

	// Every surviving relationship must actually satisfy the bound.
	bound := 0.5
	pruned, err := Compute(d, Options{Clustering: clustering, CachePseudoInverse: true, MaxLSFD: bound, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	for e, rel := range pruned.Relationships {
		op, err := pruned.PivotMatrix(d, rel.Pivot)
		if err != nil {
			t.Fatal(err)
		}
		common, _ := d.Series(rel.Common())
		other, _ := d.Series(rel.Other())
		target, err := mat.NewFromColumns(common, other)
		if err != nil {
			t.Fatal(err)
		}
		dist, err := lsfd.Distance(op, target)
		if err != nil {
			t.Fatal(err)
		}
		if dist > bound+1e-9 {
			t.Fatalf("pair %v kept with LSFD %v > bound %v", e, dist, bound)
		}
	}
}

func TestComputeErrorsSurfaceFromParallelWorkers(t *testing.T) {
	// A clustering whose assignment references an out-of-range cluster makes
	// every fit fail; the error must surface rather than deadlock.
	d := correlatedData(t, 24, 2, 8, 30, 0.02)
	clustering, err := cluster.Run(d, cluster.Config{K: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the centers so pivot matrices cannot be built.
	broken := *clustering
	broken.Centers = [][]float64{{1, 2, 3}} // wrong length and too few centers
	_, err = Compute(d, Options{Clustering: &broken, CachePseudoInverse: true, Parallelism: 4})
	if err == nil {
		t.Fatal("broken clustering should produce an error")
	}
	var zero timeseries.Pair
	_ = zero
	if errors.Is(err, ErrTooFewSeries) {
		t.Fatal("unexpected error classification")
	}
}
