// Package symex implements the SYMEX and SYMEX+ algorithms of Section 4
// (Algorithm 2) of the paper: the systematic exploration of the sequence pair
// set P that associates every sequence pair e = (u, v) with a pivot pair
// p and computes the least-squares affine relationship (A, b)_e between the
// pivot pair matrix O_p and the sequence pair matrix S_e.
//
// A pivot pair replaces one member of a sequence pair by the AFCLST cluster
// center of that member (Definition 2): the pivot for e = (u, v) is either
// (u, ω(v)) with matrix [s_u, r_ω(v)] or (ω(u), v) with matrix [s_v, r_ω(u)]
// — in both cases one series of the pair is kept as the "common" series and
// the other is approximated by its cluster center.  Keeping a common series
// guarantees exact propagation of the dot product (Lemma 1) and lets the
// SCAPE index assume a canonical first transformation column a1 = (1, 0)ᵀ.
//
// SYMEX+ differs from SYMEX only by caching the pseudo-inverse of the design
// matrix [O_p, 1_m] per pivot pair, avoiding its recomputation for the many
// sequence pairs that share a pivot; the paper measures a 3.5–4x speedup.
package symex

import (
	"errors"
	"fmt"
	"sort"

	"affinity/internal/affine"
	"affinity/internal/cluster"
	"affinity/internal/lsfd"
	"affinity/internal/mat"
	"affinity/internal/par"
	"affinity/internal/timeseries"
)

// ErrTooFewSeries indicates a data matrix with fewer than two series, for
// which no sequence pairs exist.
var ErrTooFewSeries = errors.New("symex: need at least two series")

// Pivot identifies a pivot pair p: the kept ("common") series and the AFCLST
// cluster whose center replaces the other member of the sequence pair.  The
// pivot pair matrix is O_p = [s_Common, r_Cluster].
type Pivot struct {
	Common  timeseries.SeriesID
	Cluster int
}

// String renders the pivot as "(u, ω=c)".
func (p Pivot) String() string { return fmt.Sprintf("(%d, ω=%d)", p.Common, p.Cluster) }

// Relationship is an affine relationship (Definition 3): the affine
// transformation from the pivot pair matrix O_p to the sequence pair matrix
// S_e, together with bookkeeping about which member of the pair is the
// common series.
type Relationship struct {
	// Pair is the sequence pair e in canonical (U < V) order.
	Pair timeseries.Pair
	// Pivot is the pivot pair p assigned to e.
	Pivot Pivot
	// Transform maps [s_common, r_cluster] to [s_common, s_other].
	Transform *affine.Transform
	// Flipped reports that the common series is Pair.V (so the target pair
	// matrix the transform produces is [s_V, s_U] rather than [s_U, s_V]).
	// Pairwise measures are symmetric, so this only matters when per-column
	// (location) results must be reported in canonical order.
	Flipped bool
}

// Common returns the identifier of the common series of the relationship.
func (r *Relationship) Common() timeseries.SeriesID {
	if r.Flipped {
		return r.Pair.V
	}
	return r.Pair.U
}

// Other returns the identifier of the non-common series of the relationship.
func (r *Relationship) Other() timeseries.SeriesID {
	if r.Flipped {
		return r.Pair.U
	}
	return r.Pair.V
}

// Options configures Compute.
type Options struct {
	// Cluster holds the AFCLST parameters.
	Cluster cluster.Config
	// CachePseudoInverse selects the SYMEX+ variant: the pseudo-inverse of
	// [O_p, 1_m] is computed once per pivot pair and reused.
	CachePseudoInverse bool
	// MaxRelationships, when positive, stops the exploration after this many
	// affine relationships have been produced.  It is used by the scalability
	// experiments that sweep the number of relationships.
	MaxRelationships int
	// Clustering, when non-nil, reuses an existing AFCLST result instead of
	// re-running the clustering (used when several SYMEX configurations are
	// compared on identical clusters).
	Clustering *cluster.Result
	// Parallelism sets the number of worker goroutines used to fit affine
	// relationships.  Zero or one selects the sequential algorithm; the
	// result is identical either way (fits are independent), only the
	// exploration-order bookkeeping differs internally.
	Parallelism int
	// MaxLSFD, when positive, prunes affine relationships whose LSFD between
	// the pivot pair matrix and the sequence pair matrix exceeds the bound
	// (Section 4: "we can, if required, prune the unnecessary affine
	// relationships").  Pruned pairs are absent from Relationships and the
	// engine falls back to the naive method for them.
	MaxLSFD float64
}

// Stats reports work counters of a Compute run.
type Stats struct {
	// NumRelationships is the number of affine relationships produced (g).
	NumRelationships int
	// NumPivots is the number of distinct pivot pairs generated (≤ n·k).
	NumPivots int
	// PseudoInverseComputations counts how many design-matrix pseudo-inverses
	// were actually computed.
	PseudoInverseComputations int
	// PseudoInverseCacheHits counts how many times a cached pseudo-inverse
	// was reused (always zero for plain SYMEX).
	PseudoInverseCacheHits int
	// PrunedRelationships counts relationships dropped by the MaxLSFD bound.
	PrunedRelationships int
}

// Assignment records the pivot assigned to one sequence pair by the
// exploration phase, independent of whether the fitted relationship survived
// LSFD pruning.  The list of assignments is what a streaming refit needs to
// re-fit relationships on a slid window without re-running the exploration.
type Assignment struct {
	// Pair is the sequence pair e in canonical (U < V) order.
	Pair timeseries.Pair
	// Pivot is the pivot pair assigned to e; Pivot.Common identifies which
	// member of the pair is kept as the common series.
	Pivot Pivot
}

// Result is the output of SYMEX/SYMEX+: the affine relationship hash map
// (affHash), the pivot pair map (pivotHash) and the clustering they are based
// on.
type Result struct {
	// Relationships maps every covered sequence pair to its affine
	// relationship (the paper's affHash).
	Relationships map[timeseries.Pair]*Relationship
	// Pivots maps every generated pivot pair to the sequence pairs assigned
	// to it (the paper's pivotHash, with the assignment lists that the SCAPE
	// index needs).
	Pivots map[Pivot][]timeseries.Pair
	// Assignments is the full pair→pivot assignment produced by the
	// exploration, including pairs whose relationship was pruned by the
	// MaxLSFD bound.  Refit uses it to rebuild relationships on new window
	// contents without re-exploring.
	Assignments []Assignment
	// Clustering is the AFCLST result used to build pivot pairs.
	Clustering *cluster.Result
	// Stats holds work counters.
	Stats Stats
}

// Relationship returns the affine relationship for a sequence pair.
func (r *Result) Relationship(e timeseries.Pair) (*Relationship, bool) {
	rel, ok := r.Relationships[e]
	return rel, ok
}

// SortPivots orders a pivot slice by the canonical (Common, Cluster) order —
// the one total order every consumer of the Pivots map must use before
// feeding pivots to parallel helpers, so that both work distribution and
// error selection are independent of Go's randomized map iteration.
func SortPivots(ps []Pivot) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].Common != ps[j].Common {
			return ps[i].Common < ps[j].Common
		}
		return ps[i].Cluster < ps[j].Cluster
	})
}

// SortedPivots returns the keys of the Pivots map in canonical
// (Common, Cluster) order.
func (r *Result) SortedPivots() []Pivot {
	out := make([]Pivot, 0, len(r.Pivots))
	for p := range r.Pivots {
		out = append(out, p)
	}
	SortPivots(out)
	return out
}

// PivotMatrix rebuilds the pivot pair matrix O_p = [s_common, r_cluster] for
// a pivot generated by this result.
func (r *Result) PivotMatrix(d *timeseries.DataMatrix, p Pivot) (*mat.Matrix, error) {
	if p.Cluster < 0 || p.Cluster >= r.Clustering.K() {
		return nil, fmt.Errorf("symex: pivot %v references unknown cluster", p)
	}
	return d.ColumnsMatrix(p.Common, r.Clustering.Centers[p.Cluster])
}

// PivotColumns returns the two columns of O_p = [s_common, r_cluster] as
// read-only slice views, with the same validation as PivotMatrix but without
// materializing (copying) the pair matrix.  Callers must not mutate either
// slice: the first aliases the data matrix's backing storage and the second
// the clustering's center vector.
func (r *Result) PivotColumns(d *timeseries.DataMatrix, p Pivot) (common, center []float64, err error) {
	if p.Cluster < 0 || p.Cluster >= r.Clustering.K() {
		return nil, nil, fmt.Errorf("symex: pivot %v references unknown cluster", p)
	}
	common, err = d.Series(p.Common)
	if err != nil {
		return nil, nil, err
	}
	center = r.Clustering.Centers[p.Cluster]
	if len(center) != len(common) {
		return nil, nil, fmt.Errorf("symex: cluster center has %d samples, window has %d", len(center), len(common))
	}
	return common, center, nil
}

// Compute runs SYMEX (or SYMEX+ when opts.CachePseudoInverse is set) over the
// data matrix: it clusters the series with AFCLST, systematically explores
// the sequence pair set to assign a pivot pair to every sequence pair, and
// fits one least-squares affine relationship per assignment.
//
// The exploration (Algorithm 2) is inherently sequential and cheap; the
// least-squares fits dominate the cost and are independent of each other, so
// they are optionally fanned out over opts.Parallelism goroutines.  The
// result is identical for any parallelism level.
func Compute(d *timeseries.DataMatrix, opts Options) (*Result, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	n := d.NumSeries()
	if n < 2 {
		return nil, fmt.Errorf("%w: n=%d", ErrTooFewSeries, n)
	}

	clustering := opts.Clustering
	if clustering == nil {
		var err error
		clustering, err = cluster.Run(d, opts.Cluster)
		if err != nil {
			return nil, fmt.Errorf("symex: clustering: %w", err)
		}
	}

	// Phase 1: systematic exploration of P (Algorithm 2).  Two anchor pairs
	// march toward each other from the extremes and the middle of the pair
	// grid; each anchor scans one row and one column, assigning a pivot to
	// every not-yet-covered pair.
	ex := &explorer{
		data:       d,
		clustering: clustering,
		limit:      opts.MaxRelationships,
		assigned:   make(map[timeseries.Pair]bool),
	}
	ee := timeseries.Pair{U: 0, V: timeseries.SeriesID(n - 1)}
	mid := timeseries.SeriesID((n - 1) / 2)
	ew := timeseries.Pair{U: mid, V: mid + 1}
	if int(ew.V) >= n {
		ew = ee
	}
	flip := false
	for steps := 0; steps < n && !ex.done(); steps++ {
		if !flip {
			if err := ex.createPivots(ee); err != nil {
				return nil, err
			}
			ee = timeseries.Pair{U: ee.U + 1, V: ee.V - 1}
			flip = true
		} else {
			if err := ex.createPivots(ew); err != nil {
				return nil, err
			}
			ew = timeseries.Pair{U: ew.U - 1, V: ew.V + 1}
			flip = false
		}
		if !ee.Valid() || !ew.Valid() || int(ew.V) >= n {
			break
		}
		if ee == ew {
			if err := ex.createPivots(ee); err != nil {
				return nil, err
			}
			break
		}
	}
	// Safety sweep: the marching covers all of P when it runs to completion,
	// but an early stop (relationship limit, tiny n) can leave pairs
	// unassigned; cover them with the canonical pivot (u, ω(v)).
	for u := 0; u < n-1 && !ex.done(); u++ {
		for v := u + 1; v < n && !ex.done(); v++ {
			e := timeseries.Pair{U: timeseries.SeriesID(u), V: timeseries.SeriesID(v)}
			if err := ex.assign(e, e.U); err != nil {
				return nil, err
			}
		}
	}

	// Phase 2: fit the affine relationships.
	f := &fitter{
		data:       d,
		clustering: clustering,
		useCache:   opts.CachePseudoInverse,
		maxLSFD:    opts.MaxLSFD,
	}
	fitted, err := f.fitAll(ex.assignments, opts.Parallelism)
	if err != nil {
		return nil, err
	}

	res := &Result{
		Relationships: make(map[timeseries.Pair]*Relationship, len(fitted)),
		Pivots:        make(map[Pivot][]timeseries.Pair),
		Assignments:   make([]Assignment, 0, len(ex.assignments)),
		Clustering:    clustering,
	}
	for _, a := range ex.assignments {
		res.Assignments = append(res.Assignments, Assignment{Pair: a.pair, Pivot: a.pivot})
	}
	pruned := 0
	for _, fr := range fitted {
		if opts.MaxLSFD > 0 && fr.lsfd > opts.MaxLSFD {
			pruned++
			continue
		}
		res.Relationships[fr.rel.Pair] = fr.rel
		res.Pivots[fr.rel.Pivot] = append(res.Pivots[fr.rel.Pivot], fr.rel.Pair)
	}

	res.Stats.NumRelationships = len(res.Relationships)
	res.Stats.NumPivots = len(res.Pivots)
	res.Stats.PrunedRelationships = pruned
	if opts.CachePseudoInverse {
		res.Stats.PseudoInverseComputations = len(f.distinctPivots)
		res.Stats.PseudoInverseCacheHits = len(ex.assignments) - len(f.distinctPivots)
	} else {
		res.Stats.PseudoInverseComputations = len(ex.assignments)
	}
	return res, nil
}

// assignment records the pivot assignment of one sequence pair produced by
// the exploration phase, before any fitting happens.
type assignment struct {
	pair   timeseries.Pair
	pivot  Pivot
	common timeseries.SeriesID
}

// explorer carries the state of the exploration phase.
type explorer struct {
	data        *timeseries.DataMatrix
	clustering  *cluster.Result
	limit       int
	assigned    map[timeseries.Pair]bool
	assignments []assignment
}

// done reports whether the relationship limit has been reached.
func (ex *explorer) done() bool {
	return ex.limit > 0 && len(ex.assignments) >= ex.limit
}

// createPivots implements the CreatePivots function of Algorithm 2: scan the
// row and the column of the pair grid anchored at ez.  Pairs in the scanned
// row keep the anchor's first component as the common series; pairs in the
// scanned column keep the anchor's second component.
func (ex *explorer) createPivots(ez timeseries.Pair) error {
	n := timeseries.SeriesID(ex.data.NumSeries())
	if ez.U < 0 || ez.V >= n || !ez.Valid() {
		return nil
	}
	for v := ez.U + 1; v < n && !ex.done(); v++ {
		if err := ex.assign(timeseries.Pair{U: ez.U, V: v}, ez.U); err != nil {
			return err
		}
	}
	for u := timeseries.SeriesID(0); u < ez.V && !ex.done(); u++ {
		if err := ex.assign(timeseries.Pair{U: u, V: ez.V}, ez.V); err != nil {
			return err
		}
	}
	return nil
}

// assign records the pivot assignment of a sequence pair (the bookkeeping
// half of SolveInsert), skipping pairs that already have one.
func (ex *explorer) assign(e timeseries.Pair, common timeseries.SeriesID) error {
	if ex.assigned[e] {
		return nil
	}
	other, err := e.Other(common)
	if err != nil {
		return err
	}
	omega, err := ex.clustering.Omega(other)
	if err != nil {
		return err
	}
	ex.assigned[e] = true
	ex.assignments = append(ex.assignments, assignment{
		pair:   e,
		pivot:  Pivot{Common: common, Cluster: omega},
		common: common,
	})
	return nil
}

// fittedRelationship is the output of fitting one assignment.
type fittedRelationship struct {
	rel  *Relationship
	lsfd float64 // only populated when LSFD pruning is requested
}

// fitter carries the state of the fitting phase.
type fitter struct {
	data           *timeseries.DataMatrix
	clustering     *cluster.Result
	useCache       bool
	maxLSFD        float64
	distinctPivots map[Pivot]*mat.Matrix // pivot -> cached pseudo-inverse
}

// fitAll fits every assignment, sequentially or with the requested number of
// worker goroutines.
func (f *fitter) fitAll(assignments []assignment, parallelism int) ([]fittedRelationship, error) {
	// With the SYMEX+ cache, the pseudo-inverse of [O_p, 1_m] is computed
	// once per distinct pivot.  Doing this up front (also in parallel) keeps
	// the per-assignment work read-only.
	f.distinctPivots = make(map[Pivot]*mat.Matrix)
	if f.useCache {
		var pivots []Pivot
		seen := make(map[Pivot]bool)
		for _, a := range assignments {
			if !seen[a.pivot] {
				seen[a.pivot] = true
				pivots = append(pivots, a.pivot)
			}
		}
		pinvs := make([]*mat.Matrix, len(pivots))
		err := par.Do(len(pivots), parallelism, func(i int) error {
			pinv, err := f.designPseudoInverse(pivots[i])
			if err != nil {
				return err
			}
			pinvs[i] = pinv
			return nil
		})
		if err != nil {
			return nil, err
		}
		for i, p := range pivots {
			f.distinctPivots[p] = pinvs[i]
		}
	}

	out := make([]fittedRelationship, len(assignments))
	err := par.Do(len(assignments), parallelism, func(i int) error {
		fr, err := f.fitOne(assignments[i])
		if err != nil {
			return err
		}
		out[i] = fr
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// fitOne solves the least-squares affine relationship for one assignment.
func (f *fitter) fitOne(a assignment) (fittedRelationship, error) {
	other, err := a.pair.Other(a.common)
	if err != nil {
		return fittedRelationship{}, err
	}
	commonSeries, err := f.data.Series(a.common)
	if err != nil {
		return fittedRelationship{}, err
	}
	otherSeries, err := f.data.Series(other)
	if err != nil {
		return fittedRelationship{}, err
	}
	target, err := mat.NewFromColumns(commonSeries, otherSeries)
	if err != nil {
		return fittedRelationship{}, err
	}

	pinv := f.distinctPivots[a.pivot]
	if pinv == nil {
		pinv, err = f.designPseudoInverse(a.pivot)
		if err != nil {
			return fittedRelationship{}, err
		}
	}
	transform, err := affine.FitWithPseudoInverse(pinv, target)
	if err != nil {
		return fittedRelationship{}, fmt.Errorf("symex: fitting %v against pivot %v: %w", a.pair, a.pivot, err)
	}
	fr := fittedRelationship{rel: &Relationship{
		Pair:      a.pair,
		Pivot:     a.pivot,
		Transform: transform,
		Flipped:   a.common == a.pair.V,
	}}
	if f.maxLSFD > 0 {
		if a.pivot.Cluster < 0 || a.pivot.Cluster >= len(f.clustering.Centers) {
			return fittedRelationship{}, fmt.Errorf("symex: pivot %v references unknown cluster (k=%d)",
				a.pivot, len(f.clustering.Centers))
		}
		op, err := f.data.ColumnsMatrix(a.pivot.Common, f.clustering.Centers[a.pivot.Cluster])
		if err != nil {
			return fittedRelationship{}, err
		}
		distance, err := lsfd.Distance(op, target)
		if err != nil {
			return fittedRelationship{}, err
		}
		fr.lsfd = distance
	}
	return fr, nil
}

// designPseudoInverse builds the pivot pair matrix O_p, its design matrix
// [O_p, 1_m] and the pseudo-inverse of the latter.
func (f *fitter) designPseudoInverse(p Pivot) (*mat.Matrix, error) {
	if p.Cluster < 0 || p.Cluster >= len(f.clustering.Centers) {
		return nil, fmt.Errorf("symex: pivot %v references unknown cluster (k=%d)", p, len(f.clustering.Centers))
	}
	op, err := f.data.ColumnsMatrix(p.Common, f.clustering.Centers[p.Cluster])
	if err != nil {
		return nil, err
	}
	design, err := affine.DesignMatrix(op)
	if err != nil {
		return nil, err
	}
	return mat.PseudoInverse(design)
}
