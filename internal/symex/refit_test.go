package symex

import (
	"math"
	"math/rand"
	"testing"

	"affinity/internal/timeseries"
)

// slideData returns a copy of d slid forward by `slide` fresh samples drawn
// from the same generator family.
func slideData(t testing.TB, d *timeseries.DataMatrix, seed int64, slide int) *timeseries.DataMatrix {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	batch := make([][]float64, d.NumSeries())
	for v := range batch {
		s, err := d.Series(timeseries.SeriesID(v))
		if err != nil {
			t.Fatal(err)
		}
		b := make([]float64, slide)
		for i := range b {
			// Continue each series as a noisy random walk from its last value
			// so the slid window stays well-conditioned.
			b[i] = s[len(s)-1] + 0.1*float64(i+1) + 0.05*rng.NormFloat64()
		}
		batch[v] = b
	}
	next, err := d.SlideCopy(batch)
	if err != nil {
		t.Fatal(err)
	}
	return next
}

// TestRefitAllMatchesComputeOnSameClustering: a full refit on the slid window
// must produce exactly the relationships Compute produces on the same window
// with the same (frozen) clustering.
func TestRefitAllMatchesComputeOnSameClustering(t *testing.T) {
	d := correlatedData(t, 5, 3, 12, 80, 0.05)
	prev, err := Compute(d, defaultOptions())
	if err != nil {
		t.Fatalf("Compute: %v", err)
	}

	next := slideData(t, d, 99, 10)
	refitted, rs, err := Refit(next, prev, RefitOptions{})
	if err != nil {
		t.Fatalf("Refit: %v", err)
	}
	if rs.Reused != 0 || rs.Refit != len(prev.Assignments) {
		t.Fatalf("full refit stats = %+v", rs)
	}

	fresh, err := Compute(next, Options{Clustering: prev.Clustering, CachePseudoInverse: true})
	if err != nil {
		t.Fatalf("Compute on slid window: %v", err)
	}
	if len(refitted.Relationships) != len(fresh.Relationships) {
		t.Fatalf("refit has %d relationships, fresh compute %d",
			len(refitted.Relationships), len(fresh.Relationships))
	}
	for pair, fr := range fresh.Relationships {
		rr, ok := refitted.Relationships[pair]
		if !ok {
			t.Fatalf("refit missing pair %v", pair)
		}
		if rr.Pivot != fr.Pivot || rr.Flipped != fr.Flipped {
			t.Fatalf("pair %v: pivot/flip mismatch %+v vs %+v", pair, rr, fr)
		}
		for i := 0; i < 2; i++ {
			for j := 0; j < 2; j++ {
				if math.Abs(rr.Transform.A.At(i, j)-fr.Transform.A.At(i, j)) > 1e-9 {
					t.Fatalf("pair %v: A[%d][%d] = %v vs %v",
						pair, i, j, rr.Transform.A.At(i, j), fr.Transform.A.At(i, j))
				}
			}
		}
		if math.Abs(rr.Transform.B[0]-fr.Transform.B[0]) > 1e-9 ||
			math.Abs(rr.Transform.B[1]-fr.Transform.B[1]) > 1e-9 {
			t.Fatalf("pair %v: b mismatch", pair)
		}
	}
}

// TestRefitSelectiveReusesFreshRelationships: pairs not in the stale set must
// carry over the identical transform pointer, and only stale pivots pay a
// pseudo-inverse recomputation.
func TestRefitSelectiveReusesFreshRelationships(t *testing.T) {
	d := correlatedData(t, 6, 3, 10, 60, 0.05)
	prev, err := Compute(d, defaultOptions())
	if err != nil {
		t.Fatalf("Compute: %v", err)
	}
	next := slideData(t, d, 7, 6)

	var stalePair timeseries.Pair
	for pair := range prev.Relationships {
		stalePair = pair
		break
	}
	stale := map[timeseries.Pair]bool{stalePair: true}
	refitted, rs, err := Refit(next, prev, RefitOptions{Stale: stale})
	if err != nil {
		t.Fatalf("Refit: %v", err)
	}
	if rs.Refit != 1 || rs.Reused != len(prev.Relationships)-1 {
		t.Fatalf("selective refit stats = %+v", rs)
	}
	if rs.PivotInverses != 1 {
		t.Fatalf("PivotInverses = %d, want 1", rs.PivotInverses)
	}
	for pair, rel := range refitted.Relationships {
		if pair == stalePair {
			if rel == prev.Relationships[pair] {
				t.Fatalf("stale pair %v was not re-fitted", pair)
			}
			continue
		}
		if rel != prev.Relationships[pair] {
			t.Fatalf("fresh pair %v was not carried over by pointer", pair)
		}
	}
}

// TestRefitWithoutAssignments exercises the snapshot path: a Result whose
// Assignments slice is empty falls back to reconstructing assignments from
// the relationship map.
func TestRefitWithoutAssignments(t *testing.T) {
	d := correlatedData(t, 8, 3, 9, 50, 0.05)
	prev, err := Compute(d, defaultOptions())
	if err != nil {
		t.Fatalf("Compute: %v", err)
	}
	prev.Assignments = nil
	next := slideData(t, d, 21, 5)
	refitted, rs, err := Refit(next, prev, RefitOptions{})
	if err != nil {
		t.Fatalf("Refit: %v", err)
	}
	if len(refitted.Relationships) != len(prev.Relationships) {
		t.Fatalf("refit produced %d relationships, want %d",
			len(refitted.Relationships), len(prev.Relationships))
	}
	if rs.Refit != len(prev.Relationships) {
		t.Fatalf("stats = %+v", rs)
	}
}

// TestRefitWindowMismatch rejects a window whose length no longer matches the
// frozen cluster centers.
func TestRefitWindowMismatch(t *testing.T) {
	d := correlatedData(t, 9, 3, 8, 40, 0.05)
	prev, err := Compute(d, defaultOptions())
	if err != nil {
		t.Fatalf("Compute: %v", err)
	}
	shorter, err := d.Window(0, 30)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Refit(shorter, prev, RefitOptions{}); err == nil {
		t.Fatal("refit with mismatched window length should fail")
	}
}
