package scape

import (
	"fmt"
	"math"

	"affinity/internal/interval"
	"affinity/internal/measure"
)

// Selectivity is the index's estimate of an interval query's result size,
// computed from the B-trees' per-node subtree counts without materializing a
// single result entry.
type Selectivity struct {
	// Rows is the estimated number of result entries.
	Rows int
	// Candidates is the number of sequence nodes whose exact derived value an
	// index scan would have to evaluate (the band of Section 5.3 where the
	// parameter bounds cannot decide membership).  Zero for T- and L-measure
	// queries, which the index answers without per-entry evaluation.
	Candidates int
	// Exact reports whether Rows is exact with respect to the index contents
	// (true for T- and L-measures, false for the D-measure band estimate).
	Exact bool
}

// EstimateSelectivity estimates the result size of an interval (MET/MER)
// query in O(|pivots| · log) time from the subtree counts of the sorted
// containers.  For T-measures and L-measures the modified bounds τ' = τ/‖α_q‖
// turn the question into exact key-range counts; for D-measures the spec's
// inverse transform and the per-pivot parameter bounds (U^min_q, U^max_q)
// yield a definitely-in count plus a candidate band, and band entries are
// estimated at half membership.  The cost-based planner uses both numbers to
// price an index scan against the naive and affine sweeps.
func (idx *Index) EstimateSelectivity(q PairQuery) (Selectivity, error) {
	if q.Interval.Empty() {
		return Selectivity{}, fmt.Errorf("%w: empty interval %v", ErrBadQuery, q.Interval)
	}
	sp, ok := measure.Find(q.Measure)
	if !ok {
		return Selectivity{}, fmt.Errorf("%w: %v", measure.ErrUnknownMeasure, q.Measure)
	}
	switch {
	case sp.Location():
		return idx.estimateSeries(q)
	case !sp.Derived():
		if !idx.pairMeasures[q.Measure] {
			return Selectivity{}, fmt.Errorf("%w: %v", ErrMeasureNotIndexed, q.Measure)
		}
		return idx.estimateBase(q)
	default:
		if !idx.derivedSet[q.Measure] {
			return Selectivity{}, fmt.Errorf("%w: %v", ErrMeasureNotIndexed, q.Measure)
		}
		return idx.estimateDerived(q, sp)
	}
}

// ExactRows returns the exact result cardinality of an interval query when
// the index can certify it (T- and L-measure estimates come from subtree
// counts over the same modified bounds the scans use, so they equal the scan's
// result size entry for entry), with ok=false when the count is only a band
// estimate (D-measures) or the measure is not indexed.  The query cache's
// delta repair uses this as its completeness oracle: a repaired row set that
// is a subset of the true result and matches the exact count is the true
// result.
func (idx *Index) ExactRows(q PairQuery) (int, bool, error) {
	sel, err := idx.EstimateSelectivity(q)
	if err != nil {
		return 0, false, err
	}
	return sel.Rows, sel.Exact, nil
}

// estimateSeries counts L-measure query results exactly from the global
// location tree.
func (idx *Index) estimateSeries(q PairQuery) (Selectivity, error) {
	tree, ok := idx.location[q.Measure]
	if !ok {
		return Selectivity{}, fmt.Errorf("%w: %v", ErrMeasureNotIndexed, q.Measure)
	}
	return Selectivity{Exact: true, Rows: countInterval(tree, q.Interval)}, nil
}

// estimateBase counts T-measure query results exactly, one O(log) count per
// pivot node with the same modified bounds the scans use.
func (idx *Index) estimateBase(q PairQuery) (Selectivity, error) {
	sel := Selectivity{Exact: true}
	for _, node := range idx.pivots {
		pm := node.measures[q.Measure]
		if pm == nil {
			return Selectivity{}, fmt.Errorf("%w: %v", ErrMeasureNotIndexed, q.Measure)
		}
		if pm.alphaNorm == 0 {
			// Degenerate pivot: every represented value is 0.
			if q.Interval.Contains(0) {
				sel.Rows += pm.tree.Len()
			}
			continue
		}
		sel.Rows += countInterval(pm.tree, scaleInterval(q.Interval, pm.alphaNorm))
	}
	return sel, nil
}

// estimateDerived estimates D-measure query results with the same pruning
// geometry the scans use: per pivot node the definite region is counted
// exactly and the undecidable band contributes half its entries to Rows and
// all of them to Candidates.
func (idx *Index) estimateDerived(q PairQuery, sp *measure.Spec) (Selectivity, error) {
	pred := compileDerivedPredicate(sp, q.Interval)
	if pred.empty {
		return Selectivity{}, nil
	}
	// When an open out-of-range endpoint forces exact evaluation of every
	// entry, the result size is known only when the other side is trivially
	// satisfied too (every defined value matches).
	trivial := pred.evalAll && sideTrivial(pred.eval.Lo, sp.RangeMin, false) &&
		sideTrivial(pred.eval.Hi, sp.RangeMax, true)
	sel := Selectivity{}
	for _, node := range idx.pivots {
		db := idx.nodeBounds(node, sp)
		if db.pm == nil {
			return Selectivity{}, fmt.Errorf("%w: base measure %v", ErrMeasureNotIndexed, sp.Base)
		}
		cand := db.pm.tree.Len()
		switch {
		case pred.evalAll:
			// The scan evaluates each entry exactly (and rejects undefined
			// pairs); a trivially-true predicate makes every defined entry a
			// row.
			if trivial {
				sel.Rows += cand
			} else {
				sel.Rows += cand / 2
			}
			sel.Candidates += cand
		case !db.canPrune:
			// No usable bounds: every entry is a candidate.
			sel.Rows += cand / 2
			sel.Candidates += cand
		default:
			definite, band := db.countWindow(sp, pred.eval, idx.numSamples)
			sel.Rows += definite + band/2
			sel.Candidates += band
		}
	}
	return sel, nil
}

// sideTrivial reports whether one endpoint of the evaluation interval is
// satisfied by every value inside the declared range (hiSide flips the
// comparison direction).
func sideTrivial(b interval.Bound, extreme float64, hiSide bool) bool {
	if b.Unbounded {
		return true
	}
	if hiSide {
		return b.Value > extreme || (b.Value == extreme && !b.Open)
	}
	return b.Value < extreme || (b.Value == extreme && !b.Open)
}

// countWindow counts, for one node, the entries definitely inside the
// predicate and the undecidable band, using the same (unpadded) geometry as
// the scans: the conservative window minus the definite region.
func (db derivedBounds) countWindow(sp *measure.Spec, eval interval.Interval, numSamples int) (definite, band int) {
	from, to := eval.Lo, eval.Hi
	fromExtreme, toExtreme := sp.RangeMin, sp.RangeMax
	if sp.Decreasing {
		from, to = eval.Hi, eval.Lo
		fromExtreme, toExtreme = sp.RangeMax, sp.RangeMin
	}
	fromLo, fromHi := db.sideBounds(sp, from, fromExtreme, -1, numSamples)
	toLo, toHi := db.sideBounds(sp, to, toExtreme, +1, numSamples)
	edge := func(x float64, b interval.Bound) interval.Bound {
		if math.IsInf(x, 0) {
			// Plateau / unbounded sides place no constraint on the count.
			return interval.Unbounded()
		}
		return interval.Bound{Value: x, Open: b.Open}
	}
	window := countInterval(db.pm.tree, interval.New(edge(fromLo, from), edge(toHi, to)))
	definite = countInterval(db.pm.tree, interval.New(edge(fromHi, from), edge(toLo, to)))
	if band = window - definite; band < 0 {
		band = 0
	}
	return definite, band
}
