package scape

import (
	"fmt"
	"math"

	"affinity/internal/stats"
)

// Selectivity is the index's estimate of a MET/MER query's result size,
// computed from the B-trees' per-node subtree counts without materializing a
// single result entry.
type Selectivity struct {
	// Rows is the estimated number of result entries.
	Rows int
	// Candidates is the number of sequence nodes whose exact derived value an
	// index scan would have to evaluate (the band of Section 5.3 where the
	// normalizer bounds cannot decide membership).  Zero for T- and L-measure
	// queries, which the index answers without per-entry evaluation.
	Candidates int
	// Exact reports whether Rows is exact with respect to the index contents
	// (true for T- and L-measures, false for the D-measure band estimate).
	Exact bool
}

// EstimateSelectivity estimates the result size of a MET/MER query in
// O(|pivots| · log) time from the subtree counts of the sorted containers.
// For T-measures and L-measures the modified thresholds τ' = τ/‖α_q‖ turn the
// question into exact key-range counts; for D-measures the normalizer bounds
// (U^min_q, U^max_q) yield a definitely-in count plus a candidate band, and
// band entries are estimated at half membership.  The cost-based planner uses
// both numbers to price an index scan against the naive and affine sweeps.
func (idx *Index) EstimateSelectivity(q PairQuery) (Selectivity, error) {
	if q.Range && q.Lo > q.Hi {
		return Selectivity{}, fmt.Errorf("%w: empty range [%v, %v]", ErrBadQuery, q.Lo, q.Hi)
	}
	if !q.Range && q.Op != Above && q.Op != Below {
		return Selectivity{}, fmt.Errorf("%w: unknown threshold operator %d", ErrBadQuery, int(q.Op))
	}
	switch q.Measure.Class() {
	case stats.LocationClass:
		return idx.estimateSeries(q)
	case stats.DispersionClass:
		if !idx.pairMeasures[q.Measure] {
			return Selectivity{}, fmt.Errorf("%w: %v", ErrMeasureNotIndexed, q.Measure)
		}
		return idx.estimateBase(q)
	case stats.DerivedClass:
		if !idx.derivedSet[q.Measure] {
			return Selectivity{}, fmt.Errorf("%w: %v", ErrMeasureNotIndexed, q.Measure)
		}
		return idx.estimateDerived(q)
	default:
		return Selectivity{}, fmt.Errorf("%w: %v", stats.ErrUnknownMeasure, q.Measure)
	}
}

// estimateSeries counts L-measure query results exactly from the global
// location tree.
func (idx *Index) estimateSeries(q PairQuery) (Selectivity, error) {
	tree, ok := idx.location[q.Measure]
	if !ok {
		return Selectivity{}, fmt.Errorf("%w: %v", ErrMeasureNotIndexed, q.Measure)
	}
	sel := Selectivity{Exact: true}
	switch {
	case q.Range:
		sel.Rows = tree.CountRange(q.Lo, q.Hi)
	case q.Op == Above:
		sel.Rows = tree.CountGreater(q.Tau)
	default:
		sel.Rows = tree.Rank(q.Tau)
	}
	return sel, nil
}

// estimateBase counts T-measure query results exactly, one O(log) count per
// pivot node with the same modified bounds the scans use.
func (idx *Index) estimateBase(q PairQuery) (Selectivity, error) {
	sel := Selectivity{Exact: true}
	for _, node := range idx.pivots {
		pm := node.measures[q.Measure]
		if pm == nil {
			return Selectivity{}, fmt.Errorf("%w: %v", ErrMeasureNotIndexed, q.Measure)
		}
		if pm.alphaNorm == 0 {
			// Degenerate pivot: every represented value is 0.
			if zeroMatches(q) {
				sel.Rows += pm.tree.Len()
			}
			continue
		}
		switch {
		case q.Range:
			sel.Rows += pm.tree.CountRange(q.Lo/pm.alphaNorm, q.Hi/pm.alphaNorm)
		case q.Op == Above:
			sel.Rows += pm.tree.CountGreater(q.Tau / pm.alphaNorm)
		default:
			sel.Rows += pm.tree.Rank(q.Tau / pm.alphaNorm)
		}
	}
	return sel, nil
}

// estimateDerived estimates D-measure query results with the pruning bounds:
// per pivot node the definite region is counted exactly and the undecidable
// band contributes half its entries to Rows and all of them to Candidates.
func (idx *Index) estimateDerived(q PairQuery) (Selectivity, error) {
	base := q.Measure.Base()
	sel := Selectivity{}
	for _, node := range idx.pivots {
		pm := node.measures[base]
		if pm == nil {
			return Selectivity{}, fmt.Errorf("%w: base measure %v", ErrMeasureNotIndexed, base)
		}
		bounds := node.normBounds[q.Measure]
		uMin, uMax := bounds[0], bounds[1]
		if idx.opts.DisableDerivedPruning || pm.alphaNorm == 0 || uMin <= 0 || math.IsInf(uMin, 1) {
			// No usable bounds: every entry is a candidate.
			cand := pm.tree.Len()
			sel.Rows += cand / 2
			sel.Candidates += cand
			continue
		}
		var definite, band int
		switch {
		case q.Range:
			window := pm.tree.CountRange(
				pruneLowerBound(q.Lo, uMin, uMax, pm.alphaNorm),
				pruneUpperBound(q.Hi, uMin, uMax, pm.alphaNorm))
			definite = pm.tree.CountRange(
				pruneDefiniteAbove(q.Lo, uMin, uMax, pm.alphaNorm),
				pruneDefiniteBelow(q.Hi, uMin, uMax, pm.alphaNorm))
			band = window - definite
		case q.Op == Above:
			definite = pm.tree.CountGreater(pruneDefiniteAbove(q.Tau, uMin, uMax, pm.alphaNorm))
			band = pm.tree.CountGreater(pruneLowerBound(q.Tau, uMin, uMax, pm.alphaNorm)) - definite
		default:
			definite = pm.tree.Rank(pruneDefiniteBelow(q.Tau, uMin, uMax, pm.alphaNorm))
			band = pm.tree.Len() - pm.tree.CountGreater(pruneUpperBound(q.Tau, uMin, uMax, pm.alphaNorm)) - definite
		}
		if band < 0 {
			band = 0
		}
		sel.Rows += definite + band/2
		sel.Candidates += band
	}
	return sel, nil
}

// zeroMatches reports whether a degenerate pivot's constant value 0 satisfies
// the query predicate.
func zeroMatches(q PairQuery) bool {
	if q.Range {
		return q.Lo <= 0 && 0 <= q.Hi
	}
	if q.Op == Above {
		return 0 > q.Tau
	}
	return 0 < q.Tau
}
