package scape

import (
	"fmt"
	"math"

	"affinity/internal/measure"
)

// Selectivity is the index's estimate of a MET/MER query's result size,
// computed from the B-trees' per-node subtree counts without materializing a
// single result entry.
type Selectivity struct {
	// Rows is the estimated number of result entries.
	Rows int
	// Candidates is the number of sequence nodes whose exact derived value an
	// index scan would have to evaluate (the band of Section 5.3 where the
	// parameter bounds cannot decide membership).  Zero for T- and L-measure
	// queries, which the index answers without per-entry evaluation.
	Candidates int
	// Exact reports whether Rows is exact with respect to the index contents
	// (true for T- and L-measures, false for the D-measure band estimate).
	Exact bool
}

// EstimateSelectivity estimates the result size of a MET/MER query in
// O(|pivots| · log) time from the subtree counts of the sorted containers.
// For T-measures and L-measures the modified thresholds τ' = τ/‖α_q‖ turn the
// question into exact key-range counts; for D-measures the spec's inverse
// transform and the per-pivot parameter bounds (U^min_q, U^max_q) yield a
// definitely-in count plus a candidate band, and band entries are estimated
// at half membership.  The cost-based planner uses both numbers to price an
// index scan against the naive and affine sweeps.
func (idx *Index) EstimateSelectivity(q PairQuery) (Selectivity, error) {
	if q.Range && q.Lo > q.Hi {
		return Selectivity{}, fmt.Errorf("%w: empty range [%v, %v]", ErrBadQuery, q.Lo, q.Hi)
	}
	if !q.Range && q.Op != Above && q.Op != Below {
		return Selectivity{}, fmt.Errorf("%w: unknown threshold operator %d", ErrBadQuery, int(q.Op))
	}
	sp, ok := measure.Find(q.Measure)
	if !ok {
		return Selectivity{}, fmt.Errorf("%w: %v", measure.ErrUnknownMeasure, q.Measure)
	}
	switch {
	case sp.Location():
		return idx.estimateSeries(q)
	case !sp.Derived():
		if !idx.pairMeasures[q.Measure] {
			return Selectivity{}, fmt.Errorf("%w: %v", ErrMeasureNotIndexed, q.Measure)
		}
		return idx.estimateBase(q)
	default:
		if !idx.derivedSet[q.Measure] {
			return Selectivity{}, fmt.Errorf("%w: %v", ErrMeasureNotIndexed, q.Measure)
		}
		return idx.estimateDerived(q, sp)
	}
}

// estimateSeries counts L-measure query results exactly from the global
// location tree.
func (idx *Index) estimateSeries(q PairQuery) (Selectivity, error) {
	tree, ok := idx.location[q.Measure]
	if !ok {
		return Selectivity{}, fmt.Errorf("%w: %v", ErrMeasureNotIndexed, q.Measure)
	}
	sel := Selectivity{Exact: true}
	switch {
	case q.Range:
		sel.Rows = tree.CountRange(q.Lo, q.Hi)
	case q.Op == Above:
		sel.Rows = tree.CountGreater(q.Tau)
	default:
		sel.Rows = tree.Rank(q.Tau)
	}
	return sel, nil
}

// estimateBase counts T-measure query results exactly, one O(log) count per
// pivot node with the same modified bounds the scans use.
func (idx *Index) estimateBase(q PairQuery) (Selectivity, error) {
	sel := Selectivity{Exact: true}
	for _, node := range idx.pivots {
		pm := node.measures[q.Measure]
		if pm == nil {
			return Selectivity{}, fmt.Errorf("%w: %v", ErrMeasureNotIndexed, q.Measure)
		}
		if pm.alphaNorm == 0 {
			// Degenerate pivot: every represented value is 0.
			if zeroMatches(q) {
				sel.Rows += pm.tree.Len()
			}
			continue
		}
		switch {
		case q.Range:
			sel.Rows += pm.tree.CountRange(q.Lo/pm.alphaNorm, q.Hi/pm.alphaNorm)
		case q.Op == Above:
			sel.Rows += pm.tree.CountGreater(q.Tau / pm.alphaNorm)
		default:
			sel.Rows += pm.tree.Rank(q.Tau / pm.alphaNorm)
		}
	}
	return sel, nil
}

// estimateDerived estimates D-measure query results with the same pruning
// geometry the scans use: per pivot node the definite region is counted
// exactly and the undecidable band contributes half its entries to Rows and
// all of them to Candidates.
func (idx *Index) estimateDerived(q PairQuery, sp *measure.Spec) (Selectivity, error) {
	sel := Selectivity{}
	allMatch := false
	if sp.Bounded {
		// Mirror the scan guards for probes outside the declared value range
		// (see nodeDerivedThreshold/nodeDerivedRange).
		if q.Range {
			if q.Hi < sp.RangeMin || q.Lo > sp.RangeMax {
				return Selectivity{}, nil
			}
			q.Lo = math.Max(q.Lo, sp.RangeMin)
			q.Hi = math.Min(q.Hi, sp.RangeMax)
		} else {
			if (q.Op == Above && q.Tau >= sp.RangeMax) || (q.Op == Below && q.Tau <= sp.RangeMin) {
				return Selectivity{}, nil
			}
			allMatch = (q.Op == Above && q.Tau < sp.RangeMin) || (q.Op == Below && q.Tau > sp.RangeMax)
		}
	}
	for _, node := range idx.pivots {
		db := idx.nodeBounds(node, sp)
		if db.pm == nil {
			return Selectivity{}, fmt.Errorf("%w: base measure %v", ErrMeasureNotIndexed, sp.Base)
		}
		if allMatch {
			// Every defined value satisfies the predicate; the scan still
			// evaluates each entry to reject undefined pairs.
			cand := db.pm.tree.Len()
			sel.Rows += cand
			sel.Candidates += cand
			continue
		}
		if !db.canPrune {
			// No usable bounds: every entry is a candidate.
			cand := db.pm.tree.Len()
			sel.Rows += cand / 2
			sel.Candidates += cand
			continue
		}
		var definite, band int
		switch {
		case q.Range:
			fromLo, fromHi, toLo, toHi := db.rangeXiBounds(sp, q.Lo, q.Hi, idx.numSamples)
			window := db.pm.tree.CountRange(fromLo, toHi)
			definite = db.pm.tree.CountRange(fromHi, toLo)
			band = window - definite
		default:
			xiLo, xiHi := db.xiBounds(sp, q.Tau, idx.numSamples)
			if (q.Op == Above) != sp.Decreasing {
				// Qualifying entries sit on the high-ξ side.
				definite = db.pm.tree.CountGreater(xiHi)
				band = db.pm.tree.CountGreater(xiLo) - definite
			} else {
				// Qualifying entries sit on the low-ξ side.
				definite = db.pm.tree.Rank(xiLo)
				band = db.pm.tree.Len() - db.pm.tree.CountGreater(xiHi) - definite
			}
		}
		if band < 0 {
			band = 0
		}
		sel.Rows += definite + band/2
		sel.Candidates += band
	}
	return sel, nil
}

// zeroMatches reports whether a degenerate pivot's constant value 0 satisfies
// the query predicate.
func zeroMatches(q PairQuery) bool {
	if q.Range {
		return q.Lo <= 0 && 0 <= q.Hi
	}
	if q.Op == Above {
		return 0 > q.Tau
	}
	return 0 < q.Tau
}
