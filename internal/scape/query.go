package scape

import (
	"fmt"
	"math"

	"affinity/internal/btree"
	"affinity/internal/interval"
	"affinity/internal/measure"
	"affinity/internal/par"
	"affinity/internal/stats"
	"affinity/internal/symex"
	"affinity/internal/timeseries"
)

// ThresholdOp selects the comparison direction of a measure threshold (MET)
// query: Query 2 asks for entries whose measure is "greater or lesser than"
// a user-defined threshold τ.  It is sugar over the canonical interval
// predicate — the engine converts it with Interval and every scan below
// consumes intervals only.
type ThresholdOp int

const (
	// Above selects entries with measure value strictly greater than τ.
	Above ThresholdOp = iota
	// Below selects entries with measure value strictly less than τ.
	Below
)

// Valid reports whether op names a known comparison direction.
func (op ThresholdOp) Valid() bool { return op == Above || op == Below }

// String renders the operator; out-of-range values render as "unknown(N)"
// instead of masquerading as a valid comparison.
func (op ThresholdOp) String() string {
	switch op {
	case Above:
		return ">"
	case Below:
		return "<"
	default:
		return fmt.Sprintf("unknown(%d)", int(op))
	}
}

// Interval returns the predicate form of "value op τ": the half-bounded open
// interval (τ, +∞) or (−∞, τ).  An unknown operator converts to the
// empty-matching degenerate interval, so a spec built from it fails interval
// validation instead of silently running as one of the valid directions;
// callers that want the dedicated bad-operator error Valid-check op first.
func (op ThresholdOp) Interval(tau float64) interval.Interval {
	switch op {
	case Above:
		return interval.GreaterThan(tau)
	case Below:
		return interval.LessThan(tau)
	default:
		return interval.New(interval.Open(tau), interval.Open(tau))
	}
}

// pairSpec validates that m names a pairwise measure and returns its spec.
func pairSpec(m stats.Measure) (*measure.Spec, error) {
	sp, ok := measure.Find(m)
	if !ok || !sp.Pairwise() {
		return nil, fmt.Errorf("%w: %v is not a pairwise measure", ErrBadQuery, m)
	}
	return sp, nil
}

// PairQuery describes one pairwise interval query of a batch: every sequence
// pair whose measure value lies in Interval.  MET and MER queries are the
// half-bounded and bounded instances of the same predicate.
type PairQuery struct {
	Measure  stats.Measure
	Interval interval.Interval
}

// PairInterval answers a pairwise interval query (the unified MET/MER scan):
// every sequence pair whose measure value, as represented by the index, lies
// in iv.
func (idx *Index) PairInterval(m stats.Measure, iv interval.Interval) ([]timeseries.Pair, error) {
	ps, err := idx.compilePair(PairQuery{Measure: m, Interval: iv})
	if err != nil {
		return nil, err
	}
	return idx.shardPivots(func(node *pivotNode, out []timeseries.Pair) ([]timeseries.Pair, error) {
		return idx.scanNode(node, ps, out)
	})
}

// SeriesInterval answers an interval query over an L-measure: the series whose
// measure value lies in iv.
func (idx *Index) SeriesInterval(m stats.Measure, iv interval.Interval) ([]timeseries.SeriesID, error) {
	if iv.Empty() {
		return nil, fmt.Errorf("%w: empty interval %v", ErrBadQuery, iv)
	}
	tree, ok := idx.location[m]
	if !ok {
		return nil, fmt.Errorf("%w: %v", ErrMeasureNotIndexed, m)
	}
	var out []timeseries.SeriesID
	ascendInterval(tree, iv, func(_ float64, e seriesEntry) bool {
		out = append(out, e.id)
		return true
	})
	return out, nil
}

// NodeResult is one pivot node's contribution to a pairwise interval query:
// the pivot identity plus the matching pairs in scalar-projection order.
type NodeResult struct {
	Pivot symex.Pivot
	Pairs []timeseries.Pair
}

// PairIntervalNodes answers a pairwise interval query like PairInterval but
// keeps the per-pivot-node result blocks separate, in the index's canonical
// (Common, Cluster) node order.  Concatenating the blocks reproduces
// PairInterval exactly.  A sharded coordinator uses this to merge several
// shards' results into the global node order: each shard's blocks are already
// canonically sorted, so a k-way merge by pivot reconstructs the byte-exact
// order a single unsharded index would produce.
func (idx *Index) PairIntervalNodes(m stats.Measure, iv interval.Interval) ([]NodeResult, error) {
	ps, err := idx.compilePair(PairQuery{Measure: m, Interval: iv})
	if err != nil {
		return nil, err
	}
	out := make([]NodeResult, len(idx.pivots))
	err = par.Do(len(idx.pivots), idx.opts.Parallelism, func(i int) error {
		node := idx.pivots[i]
		pairs, err := idx.scanNode(node, ps, nil)
		if err != nil {
			return err
		}
		out[i] = NodeResult{Pivot: node.pivot, Pairs: pairs}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// PairBatch answers a batch of pairwise interval queries in one pass over the
// pivot nodes: every node is visited once and serves all queries from its
// B-trees before the scan moves on, sharing the per-node α lookups and the
// node traversal across the batch.  out[i] holds the result of qs[i] and is
// identical — including order — to the result of the corresponding single
// PairInterval call.
func (idx *Index) PairBatch(qs []PairQuery) ([][]timeseries.Pair, error) {
	scans := make([]pairScan, len(qs))
	for i, q := range qs {
		ps, err := idx.compilePair(q)
		if err != nil {
			return nil, err
		}
		scans[i] = ps
	}
	// parts[block][query] — every worker walks a contiguous block of pivot
	// nodes answering all queries per node, merged per query in block order
	// (the same order the single-query scans use).
	blocks := par.Blocks(len(idx.pivots), idx.opts.Parallelism)
	parts := make([][][]timeseries.Pair, len(blocks))
	err := par.Do(len(blocks), idx.opts.Parallelism, func(b int) error {
		local := make([][]timeseries.Pair, len(qs))
		for _, node := range idx.pivots[blocks[b].Lo:blocks[b].Hi] {
			for qi := range scans {
				var err error
				local[qi], err = idx.scanNode(node, scans[qi], local[qi])
				if err != nil {
					return err
				}
			}
		}
		parts[b] = local
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make([][]timeseries.Pair, len(qs))
	for qi := range qs {
		perBlock := make([][]timeseries.Pair, len(parts))
		for b := range parts {
			perBlock[b] = parts[b][qi]
		}
		out[qi] = par.FlattenBlocks(perBlock)
	}
	return out, nil
}

// PairValue returns the index's representation of a pairwise measure for a
// single sequence pair (the value ‖α‖·ξ, put through the spec's transform for
// D-measures).  It is mainly useful for diagnostics and tests; bulk
// computation should go through the engine.
func (idx *Index) PairValue(m stats.Measure, e timeseries.Pair) (float64, error) {
	sp, err := pairSpec(m)
	if err != nil {
		return 0, err
	}
	base := sp.Base
	for _, node := range idx.pivots {
		pm, ok := node.measures[base]
		if !ok {
			continue
		}
		var found *sequenceNode
		var foundXi float64
		pm.tree.Ascend(func(key float64, sn *sequenceNode) bool {
			if sn.pair == e {
				found = sn
				foundXi = key
				return false
			}
			return true
		})
		if found == nil {
			continue
		}
		if !sp.Derived() {
			return pm.alphaNorm * foundXi, nil
		}
		if !idx.derivedSet[m] {
			return 0, fmt.Errorf("%w: %v", ErrMeasureNotIndexed, m)
		}
		u := sp.Param(idx.perSeries.stat(e.U), idx.perSeries.stat(e.V))
		return sp.Value(pm.alphaNorm*foundXi, u, idx.numSamples)
	}
	return 0, fmt.Errorf("scape: pair %v not present in the index", e)
}

// shardPivots runs scan over every pivot node — in parallel when the index
// was built with Parallelism > 1 — and concatenates the per-node results in
// pivot-node order.  idx.pivots is sorted deterministically at build time, so
// the merged result is byte-identical at any parallelism level and across
// rebuilds.
func (idx *Index) shardPivots(scan func(node *pivotNode, out []timeseries.Pair) ([]timeseries.Pair, error)) ([]timeseries.Pair, error) {
	// Contiguous node blocks (not one task per node) keep the per-task
	// dispatch overhead negligible next to the tree scans; scans append into
	// the per-block buffer directly, so matching pairs are written once.
	blocks := par.Blocks(len(idx.pivots), idx.opts.Parallelism)
	parts := make([][]timeseries.Pair, len(blocks))
	err := par.Do(len(blocks), idx.opts.Parallelism, func(b int) error {
		for _, node := range idx.pivots[blocks[b].Lo:blocks[b].Hi] {
			var err error
			parts[b], err = scan(node, parts[b])
			if err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return par.FlattenBlocks(parts), nil
}

// pairScan is one compiled pairwise interval query: the validated spec plus
// the derived-measure predicate shape, computed once and applied per node.
type pairScan struct {
	sp   *measure.Spec
	iv   interval.Interval
	pred derivedPredicate
}

// compilePair validates a pairwise interval query and precomputes its
// query-level shape.
func (idx *Index) compilePair(q PairQuery) (pairScan, error) {
	if q.Interval.Empty() {
		return pairScan{}, fmt.Errorf("%w: empty interval %v", ErrBadQuery, q.Interval)
	}
	sp, err := pairSpec(q.Measure)
	if err != nil {
		return pairScan{}, err
	}
	ps := pairScan{sp: sp, iv: q.Interval}
	if sp.Derived() {
		if !idx.derivedSet[q.Measure] {
			return pairScan{}, fmt.Errorf("%w: %v", ErrMeasureNotIndexed, q.Measure)
		}
		ps.pred = compileDerivedPredicate(sp, q.Interval)
	}
	return ps, nil
}

// scanNode answers one compiled pairwise query from one pivot node, appending
// matching pairs to out in scalar-projection order.
func (idx *Index) scanNode(node *pivotNode, ps pairScan, out []timeseries.Pair) ([]timeseries.Pair, error) {
	if !ps.sp.Derived() {
		return nodeBaseInterval(node, ps.sp.ID, ps.iv, out)
	}
	return idx.nodeDerivedInterval(node, ps.sp, ps.pred, out)
}

// nodeBaseInterval scans one pivot node for a T-measure interval query: the
// value interval maps into the scalar projection domain through the modified
// bounds τ' = τ/‖α_q‖ (Section 5.2), followed by an ordered scan of the
// B-tree.
func nodeBaseInterval(node *pivotNode, m stats.Measure, iv interval.Interval, out []timeseries.Pair) ([]timeseries.Pair, error) {
	pm, ok := node.measures[m]
	if !ok {
		return out, fmt.Errorf("%w: %v", ErrMeasureNotIndexed, m)
	}
	if pm.alphaNorm == 0 {
		// Degenerate pivot: every value it represents is 0.
		if iv.Contains(0) {
			pm.tree.Ascend(func(_ float64, sn *sequenceNode) bool {
				out = append(out, sn.pair)
				return true
			})
		}
		return out, nil
	}
	ascendInterval(pm.tree, scaleInterval(iv, pm.alphaNorm), func(_ float64, sn *sequenceNode) bool {
		out = append(out, sn.pair)
		return true
	})
	return out, nil
}

// scaleInterval divides both finite endpoints by a positive norm, mapping a
// value-space interval into ξ space for a T-measure tree.
func scaleInterval(iv interval.Interval, norm float64) interval.Interval {
	if !iv.Lo.Unbounded {
		iv.Lo.Value /= norm
	}
	if !iv.Hi.Unbounded {
		iv.Hi.Value /= norm
	}
	return iv
}

// ascendInterval visits the tree entries whose key lies in iv, in ascending
// key order: the closed key window [Lo, Hi] restricted by skipping keys equal
// to an open endpoint.
func ascendInterval[V any](t *btree.Tree[V], iv interval.Interval, fn func(key float64, v V) bool) {
	lo, hi := iv.Lo.Limit(-1), iv.Hi.Limit(1)
	t.AscendRange(lo, hi, func(key float64, v V) bool {
		if (iv.Lo.Open && key == lo) || (iv.Hi.Open && key == hi) {
			return true
		}
		return fn(key, v)
	})
}

// countInterval counts the tree entries whose key lies in iv in O(log n),
// from the per-node subtree counts (Rank counts keys strictly below,
// CountGreater strictly above).
func countInterval[V any](t *btree.Tree[V], iv interval.Interval) int {
	n := t.Len()
	upTo := n // keys satisfying the upper bound
	switch {
	case iv.Hi.Unbounded:
	case iv.Hi.Open:
		upTo = t.Rank(iv.Hi.Value)
	default:
		upTo = n - t.CountGreater(iv.Hi.Value)
	}
	below := 0 // keys violating the lower bound
	switch {
	case iv.Lo.Unbounded:
	case iv.Lo.Open:
		below = n - t.CountGreater(iv.Lo.Value)
	default:
		below = t.Rank(iv.Lo.Value)
	}
	if c := upTo - below; c > 0 {
		return c
	}
	return 0
}

// derivedBounds is the per-(node, spec) pruning geometry of Section 5.3,
// generalized to both monotone directions: value-space query bounds invert
// through the spec's InvertT into ξ-space scan bounds, with the pivot's
// parameter interval [U^min, U^max] supplying the conservative and the
// definite ends.
type derivedBounds struct {
	pm       *pivotMeasure
	canPrune bool
	uMin     float64
	uMax     float64
}

// nodeBounds inspects one pivot node for a derived spec: whether the
// parameter bounds admit pruning at all (spec transforms that divide by the
// parameter need U^min > 0; an empty or unbounded interval disables pruning
// for everyone).
func (idx *Index) nodeBounds(node *pivotNode, sp *measure.Spec) derivedBounds {
	pm, ok := node.measures[sp.Base]
	if !ok {
		return derivedBounds{}
	}
	b := node.paramBounds[sp.ID]
	db := derivedBounds{pm: pm, uMin: b[0], uMax: b[1]}
	db.canPrune = !idx.opts.DisableDerivedPruning &&
		pm.alphaNorm != 0 &&
		!math.IsInf(db.uMin, 1) && db.uMin <= db.uMax &&
		(!sp.ParamPositive || db.uMin > 0)
	return db
}

// xiBounds maps one value-space bound v into ξ space: the smallest and
// largest scalar projections at which the transform can cross v for any
// parameter in the node's interval.
func (db derivedBounds) xiBounds(sp *measure.Spec, v float64, numSamples int) (lo, hi float64) {
	tLo, tHi := sp.TBounds(v, db.uMin, db.uMax, numSamples)
	return tLo / db.pm.alphaNorm, tHi / db.pm.alphaNorm
}

// derivedPredicate is the query-level shape of a derived interval query,
// shared by every pivot node: the evaluation predicate with closed
// out-of-range endpoints clipped to the declared value range, and whether an
// open endpoint strictly outside the range defeats the inverse transform
// (the clamp plateaus there), forcing exact evaluation of every entry.
type derivedPredicate struct {
	eval    interval.Interval
	empty   bool
	evalAll bool
}

// compileDerivedPredicate applies the spec's declared value range to the
// query interval once, before any node is visited:
//
//   - an interval disjoint from [RangeMin, RangeMax] matches nothing;
//   - a closed endpoint beyond the range clips to the extreme (every defined
//     value satisfies that side), keeping the inverse transform inside its
//     domain;
//   - an open endpoint strictly beyond the range cannot be inverted (a strict
//     predicate on the plateau side is decided only by exact evaluation,
//     which still rejects pairs whose value is undefined).
func compileDerivedPredicate(sp *measure.Spec, iv interval.Interval) derivedPredicate {
	pred := derivedPredicate{eval: iv}
	if !sp.Bounded {
		return pred
	}
	lo, hi := iv.Lo, iv.Hi
	if !lo.Unbounded && (lo.Value > sp.RangeMax || (lo.Value == sp.RangeMax && lo.Open)) {
		pred.empty = true
		return pred
	}
	if !hi.Unbounded && (hi.Value < sp.RangeMin || (hi.Value == sp.RangeMin && hi.Open)) {
		pred.empty = true
		return pred
	}
	if !lo.Unbounded && lo.Value < sp.RangeMin {
		if lo.Open {
			pred.evalAll = true
		} else {
			pred.eval.Lo = interval.Closed(sp.RangeMin)
		}
	}
	if !hi.Unbounded && hi.Value > sp.RangeMax {
		if hi.Open {
			pred.evalAll = true
		} else {
			pred.eval.Hi = interval.Closed(sp.RangeMax)
		}
	}
	return pred
}

// xiWindow is the ξ-space geometry of one derived query on one pivot node:
// the conservative scan window [scanLo, scanHi] outside which no parameter in
// the node's interval can satisfy the predicate, and the definite region
// (defLo, defHi) inside which every parameter does (case I of Fig. 8(b)) —
// its entries are accepted without evaluating the exact value.
type xiWindow struct {
	scanLo, scanHi float64
	defLo, defHi   float64
}

// window maps the evaluation interval into the ξ geometry of one node.  The
// monotone-direction mirroring is applied here, once, to the interval: for
// decreasing transforms the value interval's high end is the low-T end.  A
// closed endpoint sitting at the clamp extreme the transform plateaus to on
// its side is satisfied by the entire plateau — arbitrarily large |T| — so
// that side is unbounded rather than inverted: a stale transform whose
// propagated T overshoots the parameter interval still lands inside the scan
// window and is resolved by exact evaluation.
func (db derivedBounds) window(sp *measure.Spec, eval interval.Interval, numSamples int) xiWindow {
	from, to := eval.Lo, eval.Hi
	fromExtreme, toExtreme := sp.RangeMin, sp.RangeMax
	if sp.Decreasing {
		from, to = eval.Hi, eval.Lo
		fromExtreme, toExtreme = sp.RangeMax, sp.RangeMin
	}
	fromLo, fromHi := db.sideBounds(sp, from, fromExtreme, -1, numSamples)
	toLo, toHi := db.sideBounds(sp, to, toExtreme, +1, numSamples)
	return xiWindow{
		scanLo: padBound(fromLo, -1),
		scanHi: padBound(toHi, +1),
		defLo:  padBound(fromHi, +1),
		defHi:  padBound(toLo, -1),
	}
}

// sideBounds maps one endpoint of the evaluation interval into ξ space.
// dir = −1 for the low-T end of the matching T interval, +1 for the high-T
// end; unbounded endpoints and closed endpoints on the clamp plateau extend
// their side without inversion.
func (db derivedBounds) sideBounds(sp *measure.Spec, b interval.Bound, extreme float64, dir int, numSamples int) (lo, hi float64) {
	if b.Unbounded || (sp.Bounded && !b.Open && b.Value == extreme) {
		v := math.Inf(dir)
		return v, v
	}
	return db.xiBounds(sp, b.Value, numSamples)
}

// padBound nudges a pruning boundary outward (dir = −1 toward smaller ξ,
// +1 toward larger) by a relative epsilon.  The bound tests and the exact
// per-entry evaluation round differently (ξ·‖α‖ reconstructs t inexactly), so
// an entry sitting within floating-point distance of a boundary could be
// blind-accepted by the bound while exact evaluation rejects it — or be
// skipped while evaluation accepts it.  Widening the conservative bounds and
// shrinking the definite region by this margin routes every ambiguous entry
// through exact evaluation, which is the ground truth: results with and
// without pruning stay identical.
func padBound(x float64, dir float64) float64 {
	if math.IsInf(x, 0) {
		return x
	}
	return x + dir*1e-9*(1+math.Abs(x))
}

// nodeDerivedInterval scans one pivot node for a D-measure interval query:
// the scan range in ξ is restricted with the parameter bounds, entries in the
// definite region are accepted without evaluation, and candidates in the band
// where membership cannot be decided from the bounds alone are resolved
// exactly.
func (idx *Index) nodeDerivedInterval(node *pivotNode, sp *measure.Spec, pred derivedPredicate, out []timeseries.Pair) ([]timeseries.Pair, error) {
	db := idx.nodeBounds(node, sp)
	if db.pm == nil {
		return out, fmt.Errorf("%w: base measure %v", ErrMeasureNotIndexed, sp.Base)
	}
	if node.pairs == 0 || pred.empty {
		return out, nil
	}
	evaluate := func(xi float64, sn *sequenceNode) {
		v, ok := idx.derivedValue(db.pm, sn, sp, xi)
		if ok && pred.eval.Contains(v) {
			out = append(out, sn.pair)
		}
	}
	if pred.evalAll || !db.canPrune {
		// No pruning possible (or disabled): evaluate every entry.
		db.pm.tree.Ascend(func(xi float64, sn *sequenceNode) bool {
			evaluate(xi, sn)
			return true
		})
		return out, nil
	}
	w := db.window(sp, pred.eval, idx.numSamples)
	db.pm.tree.AscendRange(w.scanLo, w.scanHi, func(xi float64, sn *sequenceNode) bool {
		if xi > w.defLo && xi < w.defHi {
			out = append(out, sn.pair)
			return true
		}
		evaluate(xi, sn)
		return true
	})
	return out, nil
}

// derivedValue computes the exact derived measure of a sequence node from
// index-resident quantities: the spec transform of ‖α‖·ξ and the separable
// parameter derived from the window's per-series statistics.
func (idx *Index) derivedValue(pm *pivotMeasure, sn *sequenceNode, sp *measure.Spec, xi float64) (float64, bool) {
	if !idx.derivedSet[sp.ID] {
		return 0, false
	}
	u := sp.Param(idx.perSeries.stat(sn.pair.U), idx.perSeries.stat(sn.pair.V))
	v, err := sp.Value(pm.alphaNorm*xi, u, idx.numSamples)
	if err != nil {
		return 0, false
	}
	return v, true
}
