package scape

import (
	"fmt"
	"math"

	"affinity/internal/par"
	"affinity/internal/stats"
	"affinity/internal/timeseries"
)

// ThresholdOp selects the comparison direction of a measure threshold (MET)
// query: Query 2 asks for entries whose measure is "greater or lesser than"
// a user-defined threshold τ.
type ThresholdOp int

const (
	// Above selects entries with measure value strictly greater than τ.
	Above ThresholdOp = iota
	// Below selects entries with measure value strictly less than τ.
	Below
)

// String renders the operator.
func (op ThresholdOp) String() string {
	if op == Below {
		return "<"
	}
	return ">"
}

// PairThreshold answers a MET query over a pairwise (T- or D-) measure: it
// returns every sequence pair whose measure value, as represented by the
// index, is above (or below) the threshold tau.
func (idx *Index) PairThreshold(m stats.Measure, tau float64, op ThresholdOp) ([]timeseries.Pair, error) {
	if op != Above && op != Below {
		return nil, fmt.Errorf("%w: unknown threshold operator %d", ErrBadQuery, int(op))
	}
	switch m.Class() {
	case stats.DispersionClass:
		return idx.baseThreshold(m, tau, op)
	case stats.DerivedClass:
		return idx.derivedThreshold(m, tau, op)
	default:
		return nil, fmt.Errorf("%w: %v is not a pairwise measure", ErrBadQuery, m)
	}
}

// PairRange answers a MER query over a pairwise measure: every sequence pair
// whose measure value lies in [lo, hi].
func (idx *Index) PairRange(m stats.Measure, lo, hi float64) ([]timeseries.Pair, error) {
	if lo > hi {
		return nil, fmt.Errorf("%w: empty range [%v, %v]", ErrBadQuery, lo, hi)
	}
	switch m.Class() {
	case stats.DispersionClass:
		return idx.baseRange(m, lo, hi)
	case stats.DerivedClass:
		return idx.derivedRange(m, lo, hi)
	default:
		return nil, fmt.Errorf("%w: %v is not a pairwise measure", ErrBadQuery, m)
	}
}

// SeriesThreshold answers a MET query over an L-measure: the series whose
// measure value is above (or below) tau.
func (idx *Index) SeriesThreshold(m stats.Measure, tau float64, op ThresholdOp) ([]timeseries.SeriesID, error) {
	tree, ok := idx.location[m]
	if !ok {
		return nil, fmt.Errorf("%w: %v", ErrMeasureNotIndexed, m)
	}
	var out []timeseries.SeriesID
	switch op {
	case Above:
		tree.AscendGreaterOrEqual(tau, func(key float64, e seriesEntry) bool {
			if key > tau {
				out = append(out, e.id)
			}
			return true
		})
	case Below:
		tree.AscendLessThan(tau, func(_ float64, e seriesEntry) bool {
			out = append(out, e.id)
			return true
		})
	default:
		return nil, fmt.Errorf("%w: unknown threshold operator %d", ErrBadQuery, int(op))
	}
	return out, nil
}

// SeriesRange answers a MER query over an L-measure: the series whose measure
// value lies in [lo, hi].
func (idx *Index) SeriesRange(m stats.Measure, lo, hi float64) ([]timeseries.SeriesID, error) {
	if lo > hi {
		return nil, fmt.Errorf("%w: empty range [%v, %v]", ErrBadQuery, lo, hi)
	}
	tree, ok := idx.location[m]
	if !ok {
		return nil, fmt.Errorf("%w: %v", ErrMeasureNotIndexed, m)
	}
	var out []timeseries.SeriesID
	tree.AscendRange(lo, hi, func(_ float64, e seriesEntry) bool {
		out = append(out, e.id)
		return true
	})
	return out, nil
}

// PairQuery describes one pairwise MET or MER query of a batch.
type PairQuery struct {
	// Measure is the T- or D-measure queried.
	Measure stats.Measure
	// Range selects a MER query over [Lo, Hi]; otherwise the query is a MET
	// query with threshold Tau and direction Op.
	Range  bool
	Op     ThresholdOp
	Tau    float64
	Lo, Hi float64
}

// PairBatch answers a batch of pairwise MET/MER queries in one pass over the
// pivot nodes: every node is visited once and serves all queries from its
// B-trees before the scan moves on, sharing the per-node α lookups and the
// node traversal across the batch.  out[i] holds the result of qs[i] and is
// identical — including order — to the result of the corresponding single
// PairThreshold/PairRange call.
func (idx *Index) PairBatch(qs []PairQuery) ([][]timeseries.Pair, error) {
	for _, q := range qs {
		switch q.Measure.Class() {
		case stats.DispersionClass:
		case stats.DerivedClass:
			if !idx.derivedSet[q.Measure] {
				return nil, fmt.Errorf("%w: %v", ErrMeasureNotIndexed, q.Measure)
			}
		default:
			return nil, fmt.Errorf("%w: %v is not a pairwise measure", ErrBadQuery, q.Measure)
		}
		if q.Range && q.Lo > q.Hi {
			return nil, fmt.Errorf("%w: empty range [%v, %v]", ErrBadQuery, q.Lo, q.Hi)
		}
		if !q.Range && q.Op != Above && q.Op != Below {
			return nil, fmt.Errorf("%w: unknown threshold operator %d", ErrBadQuery, int(q.Op))
		}
	}
	// parts[block][query] — every worker walks a contiguous block of pivot
	// nodes answering all queries per node, merged per query in block order
	// (the same order the single-query scans use).
	blocks := par.Blocks(len(idx.pivots), idx.opts.Parallelism)
	parts := make([][][]timeseries.Pair, len(blocks))
	err := par.Do(len(blocks), idx.opts.Parallelism, func(b int) error {
		local := make([][]timeseries.Pair, len(qs))
		for _, node := range idx.pivots[blocks[b].Lo:blocks[b].Hi] {
			for qi, q := range qs {
				var err error
				switch {
				case q.Measure.Class() == stats.DispersionClass && q.Range:
					local[qi], err = nodeBaseRange(node, q.Measure, q.Lo, q.Hi, local[qi])
				case q.Measure.Class() == stats.DispersionClass:
					local[qi], err = nodeBaseThreshold(node, q.Measure, q.Tau, q.Op, local[qi])
				case q.Range:
					local[qi], err = idx.nodeDerivedRange(node, q.Measure, q.Lo, q.Hi, local[qi])
				default:
					local[qi], err = idx.nodeDerivedThreshold(node, q.Measure, q.Tau, q.Op, local[qi])
				}
				if err != nil {
					return err
				}
			}
		}
		parts[b] = local
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make([][]timeseries.Pair, len(qs))
	for qi := range qs {
		perBlock := make([][]timeseries.Pair, len(parts))
		for b := range parts {
			perBlock[b] = parts[b][qi]
		}
		out[qi] = par.FlattenBlocks(perBlock)
	}
	return out, nil
}

// PairValue returns the index's representation of a pairwise measure for a
// single sequence pair (the value ‖α‖·ξ, divided by the stored normalizer for
// D-measures).  It is mainly useful for diagnostics and tests; bulk
// computation should go through the engine.
func (idx *Index) PairValue(m stats.Measure, e timeseries.Pair) (float64, error) {
	base := m.Base()
	for _, node := range idx.pivots {
		pm, ok := node.measures[base]
		if !ok {
			continue
		}
		var found *sequenceNode
		var foundXi float64
		pm.tree.Ascend(func(key float64, sn *sequenceNode) bool {
			if sn.pair == e {
				found = sn
				foundXi = key
				return false
			}
			return true
		})
		if found == nil {
			continue
		}
		value := pm.alphaNorm * foundXi
		if m.Class() == stats.DerivedClass {
			u, ok := found.normalizers[m]
			if !ok {
				return 0, fmt.Errorf("%w: %v", ErrMeasureNotIndexed, m)
			}
			if u == 0 {
				return 0, stats.ErrZeroNormalizer
			}
			value /= u
			if m == stats.Correlation {
				value = clamp(value, -1, 1)
			}
		}
		return value, nil
	}
	return 0, fmt.Errorf("scape: pair %v not present in the index", e)
}

// shardPivots runs scan over every pivot node — in parallel when the index
// was built with Parallelism > 1 — and concatenates the per-node results in
// pivot-node order.  idx.pivots is sorted deterministically at build time, so
// the merged result is byte-identical at any parallelism level and across
// rebuilds.
func (idx *Index) shardPivots(scan func(node *pivotNode, out []timeseries.Pair) ([]timeseries.Pair, error)) ([]timeseries.Pair, error) {
	// Contiguous node blocks (not one task per node) keep the per-task
	// dispatch overhead negligible next to the tree scans; scans append into
	// the per-block buffer directly, so matching pairs are written once.
	blocks := par.Blocks(len(idx.pivots), idx.opts.Parallelism)
	parts := make([][]timeseries.Pair, len(blocks))
	err := par.Do(len(blocks), idx.opts.Parallelism, func(b int) error {
		for _, node := range idx.pivots[blocks[b].Lo:blocks[b].Hi] {
			var err error
			parts[b], err = scan(node, parts[b])
			if err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return par.FlattenBlocks(parts), nil
}

// baseThreshold processes MET queries for T- and L-indexed pair measures by
// converting the threshold into the scalar projection domain: τ' = τ/‖α_q‖
// per pivot node, followed by an ordered scan of the B-tree (Section 5.2).
// Pivot nodes are independent, so the scan shards across them.
func (idx *Index) baseThreshold(m stats.Measure, tau float64, op ThresholdOp) ([]timeseries.Pair, error) {
	return idx.shardPivots(func(node *pivotNode, out []timeseries.Pair) ([]timeseries.Pair, error) {
		return nodeBaseThreshold(node, m, tau, op, out)
	})
}

// nodeBaseThreshold scans one pivot node for a T-measure MET query.
func nodeBaseThreshold(node *pivotNode, m stats.Measure, tau float64, op ThresholdOp, out []timeseries.Pair) ([]timeseries.Pair, error) {
	pm, ok := node.measures[m]
	if !ok {
		return out, fmt.Errorf("%w: %v", ErrMeasureNotIndexed, m)
	}
	if pm.alphaNorm == 0 {
		// Degenerate pivot: every value it represents is 0.
		if (op == Above && 0 > tau) || (op == Below && 0 < tau) {
			pm.tree.Ascend(func(_ float64, sn *sequenceNode) bool {
				out = append(out, sn.pair)
				return true
			})
		}
		return out, nil
	}
	modified := tau / pm.alphaNorm
	switch op {
	case Above:
		pm.tree.AscendGreaterOrEqual(modified, func(key float64, sn *sequenceNode) bool {
			if key > modified {
				out = append(out, sn.pair)
			}
			return true
		})
	case Below:
		pm.tree.AscendLessThan(modified, func(_ float64, sn *sequenceNode) bool {
			out = append(out, sn.pair)
			return true
		})
	}
	return out, nil
}

// baseRange processes MER queries for T-measures with modified bounds
// τ'l = τl/‖α_q‖ and τ'u = τu/‖α_q‖ per pivot node, sharded across pivot
// nodes.
func (idx *Index) baseRange(m stats.Measure, lo, hi float64) ([]timeseries.Pair, error) {
	return idx.shardPivots(func(node *pivotNode, out []timeseries.Pair) ([]timeseries.Pair, error) {
		return nodeBaseRange(node, m, lo, hi, out)
	})
}

// nodeBaseRange scans one pivot node for a T-measure MER query.
func nodeBaseRange(node *pivotNode, m stats.Measure, lo, hi float64, out []timeseries.Pair) ([]timeseries.Pair, error) {
	pm, ok := node.measures[m]
	if !ok {
		return out, fmt.Errorf("%w: %v", ErrMeasureNotIndexed, m)
	}
	if pm.alphaNorm == 0 {
		if lo <= 0 && 0 <= hi {
			pm.tree.Ascend(func(_ float64, sn *sequenceNode) bool {
				out = append(out, sn.pair)
				return true
			})
		}
		return out, nil
	}
	modLo := lo / pm.alphaNorm
	modHi := hi / pm.alphaNorm
	pm.tree.AscendRange(modLo, modHi, func(_ float64, sn *sequenceNode) bool {
		out = append(out, sn.pair)
		return true
	})
	return out, nil
}

// derivedThreshold processes MET queries for D-measures using the pruning of
// Section 5.3: per pivot node the normalizer bounds U^min_q / U^max_q yield
// modified thresholds; sequence nodes whose scalar projection lies beyond the
// "definitely in" bound are accepted without further work, nodes beyond the
// "definitely out" bound are never visited, and only the narrow band in
// between needs the per-node exact value ‖α‖ξ / U_e.
func (idx *Index) derivedThreshold(m stats.Measure, tau float64, op ThresholdOp) ([]timeseries.Pair, error) {
	if !idx.derivedSet[m] {
		return nil, fmt.Errorf("%w: %v", ErrMeasureNotIndexed, m)
	}
	return idx.shardPivots(func(node *pivotNode, out []timeseries.Pair) ([]timeseries.Pair, error) {
		return idx.nodeDerivedThreshold(node, m, tau, op, out)
	})
}

// nodeDerivedThreshold scans one pivot node for a D-measure MET query.
func (idx *Index) nodeDerivedThreshold(node *pivotNode, m stats.Measure, tau float64, op ThresholdOp, out []timeseries.Pair) ([]timeseries.Pair, error) {
	base := m.Base()
	pm, ok := node.measures[base]
	if !ok {
		return out, fmt.Errorf("%w: base measure %v", ErrMeasureNotIndexed, base)
	}
	if node.pairs == 0 {
		return out, nil
	}
	bounds := node.normBounds[m]
	uMin, uMax := bounds[0], bounds[1]
	include := func(sn *sequenceNode, xi float64) {
		if accepted := idx.derivedCompare(pm, sn, m, xi, tau, op); accepted {
			out = append(out, sn.pair)
		}
	}
	if idx.opts.DisableDerivedPruning || pm.alphaNorm == 0 || uMin <= 0 || math.IsInf(uMin, 1) {
		// No pruning possible (or disabled): evaluate every node.
		pm.tree.Ascend(func(xi float64, sn *sequenceNode) bool {
			include(sn, xi)
			return true
		})
		return out, nil
	}
	switch op {
	case Above:
		// Start the scan at the smallest ξ that could still qualify.
		scanStart := pruneLowerBound(tau, uMin, uMax, pm.alphaNorm)
		definite := pruneDefiniteAbove(tau, uMin, uMax, pm.alphaNorm)
		pm.tree.AscendGreaterOrEqual(scanStart, func(xi float64, sn *sequenceNode) bool {
			if xi > definite {
				// ξ beyond τ'max: in the result for every possible U.
				out = append(out, sn.pair)
				return true
			}
			include(sn, xi)
			return true
		})
	case Below:
		// Mirror image: scan from the bottom up to the largest ξ that
		// could still qualify.
		scanEnd := pruneUpperBound(tau, uMin, uMax, pm.alphaNorm)
		definite := pruneDefiniteBelow(tau, uMin, uMax, pm.alphaNorm)
		pm.tree.Ascend(func(xi float64, sn *sequenceNode) bool {
			if xi > scanEnd {
				return false
			}
			if xi < definite {
				out = append(out, sn.pair)
				return true
			}
			include(sn, xi)
			return true
		})
	}
	return out, nil
}

// derivedRange processes MER queries for D-measures: the scan range in ξ is
// restricted with the normalizer bounds, candidates inside the band where
// membership cannot be decided from the bounds alone are resolved exactly.
func (idx *Index) derivedRange(m stats.Measure, lo, hi float64) ([]timeseries.Pair, error) {
	if !idx.derivedSet[m] {
		return nil, fmt.Errorf("%w: %v", ErrMeasureNotIndexed, m)
	}
	return idx.shardPivots(func(node *pivotNode, out []timeseries.Pair) ([]timeseries.Pair, error) {
		return idx.nodeDerivedRange(node, m, lo, hi, out)
	})
}

// nodeDerivedRange scans one pivot node for a D-measure MER query.
func (idx *Index) nodeDerivedRange(node *pivotNode, m stats.Measure, lo, hi float64, out []timeseries.Pair) ([]timeseries.Pair, error) {
	base := m.Base()
	pm, ok := node.measures[base]
	if !ok {
		return out, fmt.Errorf("%w: base measure %v", ErrMeasureNotIndexed, base)
	}
	if node.pairs == 0 {
		return out, nil
	}
	bounds := node.normBounds[m]
	uMin, uMax := bounds[0], bounds[1]
	evaluate := func(xi float64, sn *sequenceNode) {
		v, ok := idx.derivedValue(pm, sn, m, xi)
		if ok && v >= lo && v <= hi {
			out = append(out, sn.pair)
		}
	}
	if idx.opts.DisableDerivedPruning || pm.alphaNorm == 0 || uMin <= 0 || math.IsInf(uMin, 1) {
		pm.tree.Ascend(func(xi float64, sn *sequenceNode) bool {
			evaluate(xi, sn)
			return true
		})
		return out, nil
	}
	scanStart := pruneLowerBound(lo, uMin, uMax, pm.alphaNorm)
	scanEnd := pruneUpperBound(hi, uMin, uMax, pm.alphaNorm)
	// Inside [definiteLo, definiteHi] the value is within [lo, hi] for
	// every possible normalizer (case I of Fig. 8(b)); such nodes are
	// accepted without evaluating the exact value.
	definiteLo := pruneDefiniteAbove(lo, uMin, uMax, pm.alphaNorm)
	definiteHi := pruneDefiniteBelow(hi, uMin, uMax, pm.alphaNorm)
	pm.tree.AscendRange(scanStart, scanEnd, func(xi float64, sn *sequenceNode) bool {
		if xi > definiteLo && xi < definiteHi {
			out = append(out, sn.pair)
			return true
		}
		evaluate(xi, sn)
		return true
	})
	return out, nil
}

// derivedValue computes the exact derived measure of a sequence node from
// index-resident quantities: ‖α‖·ξ divided by the stored normalizer.
func (idx *Index) derivedValue(pm *pivotMeasure, sn *sequenceNode, m stats.Measure, xi float64) (float64, bool) {
	u, ok := sn.normalizers[m]
	if !ok || u == 0 {
		return 0, false
	}
	v := pm.alphaNorm * xi / u
	if m == stats.Correlation {
		v = clamp(v, -1, 1)
	}
	return v, true
}

// derivedCompare evaluates the exact derived value of a candidate node and
// compares it against the threshold.
func (idx *Index) derivedCompare(pm *pivotMeasure, sn *sequenceNode, m stats.Measure,
	xi, tau float64, op ThresholdOp) bool {
	v, ok := idx.derivedValue(pm, sn, m, xi)
	if !ok {
		return false
	}
	if op == Above {
		return v > tau
	}
	return v < tau
}

// pruneLowerBound returns the smallest scalar projection that could still
// satisfy "value > tau" (or contribute to a range starting at tau) given that
// the normalizer lies in [uMin, uMax]: below this ξ the value is below tau
// for every possible normalizer.
func pruneLowerBound(tau, uMin, uMax, alphaNorm float64) float64 {
	if tau >= 0 {
		return tau * uMin / alphaNorm
	}
	return tau * uMax / alphaNorm
}

// pruneUpperBound returns the largest scalar projection that could still
// satisfy "value < tau" (or contribute to a range ending at tau).
func pruneUpperBound(tau, uMin, uMax, alphaNorm float64) float64 {
	if tau >= 0 {
		return tau * uMax / alphaNorm
	}
	return tau * uMin / alphaNorm
}

// pruneDefiniteAbove returns the scalar projection beyond which the value is
// greater than tau for every possible normalizer (τ'max in Eq. 19).
func pruneDefiniteAbove(tau, uMin, uMax, alphaNorm float64) float64 {
	if tau >= 0 {
		return tau * uMax / alphaNorm
	}
	return tau * uMin / alphaNorm
}

// pruneDefiniteBelow returns the scalar projection below which the value is
// smaller than tau for every possible normalizer.
func pruneDefiniteBelow(tau, uMin, uMax, alphaNorm float64) float64 {
	if tau >= 0 {
		return tau * uMin / alphaNorm
	}
	return tau * uMax / alphaNorm
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
