package scape

import (
	"fmt"
	"math"

	"affinity/internal/measure"
	"affinity/internal/par"
	"affinity/internal/stats"
	"affinity/internal/timeseries"
)

// ThresholdOp selects the comparison direction of a measure threshold (MET)
// query: Query 2 asks for entries whose measure is "greater or lesser than"
// a user-defined threshold τ.
type ThresholdOp int

const (
	// Above selects entries with measure value strictly greater than τ.
	Above ThresholdOp = iota
	// Below selects entries with measure value strictly less than τ.
	Below
)

// String renders the operator.
func (op ThresholdOp) String() string {
	if op == Below {
		return "<"
	}
	return ">"
}

// pairSpec validates that m names a pairwise measure and returns its spec.
func pairSpec(m stats.Measure) (*measure.Spec, error) {
	sp, ok := measure.Find(m)
	if !ok || !sp.Pairwise() {
		return nil, fmt.Errorf("%w: %v is not a pairwise measure", ErrBadQuery, m)
	}
	return sp, nil
}

// PairThreshold answers a MET query over a pairwise (T- or D-) measure: it
// returns every sequence pair whose measure value, as represented by the
// index, is above (or below) the threshold tau.
func (idx *Index) PairThreshold(m stats.Measure, tau float64, op ThresholdOp) ([]timeseries.Pair, error) {
	if op != Above && op != Below {
		return nil, fmt.Errorf("%w: unknown threshold operator %d", ErrBadQuery, int(op))
	}
	sp, err := pairSpec(m)
	if err != nil {
		return nil, err
	}
	if !sp.Derived() {
		return idx.baseThreshold(m, tau, op)
	}
	if !idx.derivedSet[m] {
		return nil, fmt.Errorf("%w: %v", ErrMeasureNotIndexed, m)
	}
	return idx.shardPivots(func(node *pivotNode, out []timeseries.Pair) ([]timeseries.Pair, error) {
		return idx.nodeDerivedThreshold(node, sp, tau, op, out)
	})
}

// PairRange answers a MER query over a pairwise measure: every sequence pair
// whose measure value lies in [lo, hi].
func (idx *Index) PairRange(m stats.Measure, lo, hi float64) ([]timeseries.Pair, error) {
	if lo > hi {
		return nil, fmt.Errorf("%w: empty range [%v, %v]", ErrBadQuery, lo, hi)
	}
	sp, err := pairSpec(m)
	if err != nil {
		return nil, err
	}
	if !sp.Derived() {
		return idx.baseRange(m, lo, hi)
	}
	if !idx.derivedSet[m] {
		return nil, fmt.Errorf("%w: %v", ErrMeasureNotIndexed, m)
	}
	return idx.shardPivots(func(node *pivotNode, out []timeseries.Pair) ([]timeseries.Pair, error) {
		return idx.nodeDerivedRange(node, sp, lo, hi, out)
	})
}

// SeriesThreshold answers a MET query over an L-measure: the series whose
// measure value is above (or below) tau.
func (idx *Index) SeriesThreshold(m stats.Measure, tau float64, op ThresholdOp) ([]timeseries.SeriesID, error) {
	tree, ok := idx.location[m]
	if !ok {
		return nil, fmt.Errorf("%w: %v", ErrMeasureNotIndexed, m)
	}
	var out []timeseries.SeriesID
	switch op {
	case Above:
		tree.AscendGreaterOrEqual(tau, func(key float64, e seriesEntry) bool {
			if key > tau {
				out = append(out, e.id)
			}
			return true
		})
	case Below:
		tree.AscendLessThan(tau, func(_ float64, e seriesEntry) bool {
			out = append(out, e.id)
			return true
		})
	default:
		return nil, fmt.Errorf("%w: unknown threshold operator %d", ErrBadQuery, int(op))
	}
	return out, nil
}

// SeriesRange answers a MER query over an L-measure: the series whose measure
// value lies in [lo, hi].
func (idx *Index) SeriesRange(m stats.Measure, lo, hi float64) ([]timeseries.SeriesID, error) {
	if lo > hi {
		return nil, fmt.Errorf("%w: empty range [%v, %v]", ErrBadQuery, lo, hi)
	}
	tree, ok := idx.location[m]
	if !ok {
		return nil, fmt.Errorf("%w: %v", ErrMeasureNotIndexed, m)
	}
	var out []timeseries.SeriesID
	tree.AscendRange(lo, hi, func(_ float64, e seriesEntry) bool {
		out = append(out, e.id)
		return true
	})
	return out, nil
}

// PairQuery describes one pairwise MET or MER query of a batch.
type PairQuery struct {
	// Measure is the T- or D-measure queried.
	Measure stats.Measure
	// Range selects a MER query over [Lo, Hi]; otherwise the query is a MET
	// query with threshold Tau and direction Op.
	Range  bool
	Op     ThresholdOp
	Tau    float64
	Lo, Hi float64
}

// PairBatch answers a batch of pairwise MET/MER queries in one pass over the
// pivot nodes: every node is visited once and serves all queries from its
// B-trees before the scan moves on, sharing the per-node α lookups and the
// node traversal across the batch.  out[i] holds the result of qs[i] and is
// identical — including order — to the result of the corresponding single
// PairThreshold/PairRange call.
func (idx *Index) PairBatch(qs []PairQuery) ([][]timeseries.Pair, error) {
	specs := make([]*measure.Spec, len(qs))
	for i, q := range qs {
		sp, err := pairSpec(q.Measure)
		if err != nil {
			return nil, err
		}
		if sp.Derived() && !idx.derivedSet[q.Measure] {
			return nil, fmt.Errorf("%w: %v", ErrMeasureNotIndexed, q.Measure)
		}
		specs[i] = sp
		if q.Range && q.Lo > q.Hi {
			return nil, fmt.Errorf("%w: empty range [%v, %v]", ErrBadQuery, q.Lo, q.Hi)
		}
		if !q.Range && q.Op != Above && q.Op != Below {
			return nil, fmt.Errorf("%w: unknown threshold operator %d", ErrBadQuery, int(q.Op))
		}
	}
	// parts[block][query] — every worker walks a contiguous block of pivot
	// nodes answering all queries per node, merged per query in block order
	// (the same order the single-query scans use).
	blocks := par.Blocks(len(idx.pivots), idx.opts.Parallelism)
	parts := make([][][]timeseries.Pair, len(blocks))
	err := par.Do(len(blocks), idx.opts.Parallelism, func(b int) error {
		local := make([][]timeseries.Pair, len(qs))
		for _, node := range idx.pivots[blocks[b].Lo:blocks[b].Hi] {
			for qi, q := range qs {
				var err error
				switch {
				case !specs[qi].Derived() && q.Range:
					local[qi], err = nodeBaseRange(node, q.Measure, q.Lo, q.Hi, local[qi])
				case !specs[qi].Derived():
					local[qi], err = nodeBaseThreshold(node, q.Measure, q.Tau, q.Op, local[qi])
				case q.Range:
					local[qi], err = idx.nodeDerivedRange(node, specs[qi], q.Lo, q.Hi, local[qi])
				default:
					local[qi], err = idx.nodeDerivedThreshold(node, specs[qi], q.Tau, q.Op, local[qi])
				}
				if err != nil {
					return err
				}
			}
		}
		parts[b] = local
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make([][]timeseries.Pair, len(qs))
	for qi := range qs {
		perBlock := make([][]timeseries.Pair, len(parts))
		for b := range parts {
			perBlock[b] = parts[b][qi]
		}
		out[qi] = par.FlattenBlocks(perBlock)
	}
	return out, nil
}

// PairValue returns the index's representation of a pairwise measure for a
// single sequence pair (the value ‖α‖·ξ, put through the spec's transform for
// D-measures).  It is mainly useful for diagnostics and tests; bulk
// computation should go through the engine.
func (idx *Index) PairValue(m stats.Measure, e timeseries.Pair) (float64, error) {
	sp, err := pairSpec(m)
	if err != nil {
		return 0, err
	}
	base := sp.Base
	for _, node := range idx.pivots {
		pm, ok := node.measures[base]
		if !ok {
			continue
		}
		var found *sequenceNode
		var foundXi float64
		pm.tree.Ascend(func(key float64, sn *sequenceNode) bool {
			if sn.pair == e {
				found = sn
				foundXi = key
				return false
			}
			return true
		})
		if found == nil {
			continue
		}
		if !sp.Derived() {
			return pm.alphaNorm * foundXi, nil
		}
		u, ok := found.params[m]
		if !ok {
			return 0, fmt.Errorf("%w: %v", ErrMeasureNotIndexed, m)
		}
		return sp.Value(pm.alphaNorm*foundXi, u, idx.numSamples)
	}
	return 0, fmt.Errorf("scape: pair %v not present in the index", e)
}

// shardPivots runs scan over every pivot node — in parallel when the index
// was built with Parallelism > 1 — and concatenates the per-node results in
// pivot-node order.  idx.pivots is sorted deterministically at build time, so
// the merged result is byte-identical at any parallelism level and across
// rebuilds.
func (idx *Index) shardPivots(scan func(node *pivotNode, out []timeseries.Pair) ([]timeseries.Pair, error)) ([]timeseries.Pair, error) {
	// Contiguous node blocks (not one task per node) keep the per-task
	// dispatch overhead negligible next to the tree scans; scans append into
	// the per-block buffer directly, so matching pairs are written once.
	blocks := par.Blocks(len(idx.pivots), idx.opts.Parallelism)
	parts := make([][]timeseries.Pair, len(blocks))
	err := par.Do(len(blocks), idx.opts.Parallelism, func(b int) error {
		for _, node := range idx.pivots[blocks[b].Lo:blocks[b].Hi] {
			var err error
			parts[b], err = scan(node, parts[b])
			if err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return par.FlattenBlocks(parts), nil
}

// baseThreshold processes MET queries for T-measures by converting the
// threshold into the scalar projection domain: τ' = τ/‖α_q‖ per pivot node,
// followed by an ordered scan of the B-tree (Section 5.2).  Pivot nodes are
// independent, so the scan shards across them.
func (idx *Index) baseThreshold(m stats.Measure, tau float64, op ThresholdOp) ([]timeseries.Pair, error) {
	return idx.shardPivots(func(node *pivotNode, out []timeseries.Pair) ([]timeseries.Pair, error) {
		return nodeBaseThreshold(node, m, tau, op, out)
	})
}

// nodeBaseThreshold scans one pivot node for a T-measure MET query.
func nodeBaseThreshold(node *pivotNode, m stats.Measure, tau float64, op ThresholdOp, out []timeseries.Pair) ([]timeseries.Pair, error) {
	pm, ok := node.measures[m]
	if !ok {
		return out, fmt.Errorf("%w: %v", ErrMeasureNotIndexed, m)
	}
	if pm.alphaNorm == 0 {
		// Degenerate pivot: every value it represents is 0.
		if (op == Above && 0 > tau) || (op == Below && 0 < tau) {
			pm.tree.Ascend(func(_ float64, sn *sequenceNode) bool {
				out = append(out, sn.pair)
				return true
			})
		}
		return out, nil
	}
	modified := tau / pm.alphaNorm
	switch op {
	case Above:
		pm.tree.AscendGreaterOrEqual(modified, func(key float64, sn *sequenceNode) bool {
			if key > modified {
				out = append(out, sn.pair)
			}
			return true
		})
	case Below:
		pm.tree.AscendLessThan(modified, func(_ float64, sn *sequenceNode) bool {
			out = append(out, sn.pair)
			return true
		})
	}
	return out, nil
}

// baseRange processes MER queries for T-measures with modified bounds
// τ'l = τl/‖α_q‖ and τ'u = τu/‖α_q‖ per pivot node, sharded across pivot
// nodes.
func (idx *Index) baseRange(m stats.Measure, lo, hi float64) ([]timeseries.Pair, error) {
	return idx.shardPivots(func(node *pivotNode, out []timeseries.Pair) ([]timeseries.Pair, error) {
		return nodeBaseRange(node, m, lo, hi, out)
	})
}

// nodeBaseRange scans one pivot node for a T-measure MER query.
func nodeBaseRange(node *pivotNode, m stats.Measure, lo, hi float64, out []timeseries.Pair) ([]timeseries.Pair, error) {
	pm, ok := node.measures[m]
	if !ok {
		return out, fmt.Errorf("%w: %v", ErrMeasureNotIndexed, m)
	}
	if pm.alphaNorm == 0 {
		if lo <= 0 && 0 <= hi {
			pm.tree.Ascend(func(_ float64, sn *sequenceNode) bool {
				out = append(out, sn.pair)
				return true
			})
		}
		return out, nil
	}
	modLo := lo / pm.alphaNorm
	modHi := hi / pm.alphaNorm
	pm.tree.AscendRange(modLo, modHi, func(_ float64, sn *sequenceNode) bool {
		out = append(out, sn.pair)
		return true
	})
	return out, nil
}

// derivedBounds is the per-(node, spec) pruning geometry of Section 5.3,
// generalized to both monotone directions: value-space query bounds invert
// through the spec's InvertT into ξ-space scan bounds, with the pivot's
// parameter interval [U^min, U^max] supplying the conservative and the
// definite ends.
type derivedBounds struct {
	pm       *pivotMeasure
	canPrune bool
	uMin     float64
	uMax     float64
}

// nodeBounds inspects one pivot node for a derived spec: whether the
// parameter bounds admit pruning at all (spec transforms that divide by the
// parameter need U^min > 0; an empty or unbounded interval disables pruning
// for everyone).
func (idx *Index) nodeBounds(node *pivotNode, sp *measure.Spec) derivedBounds {
	pm, ok := node.measures[sp.Base]
	if !ok {
		return derivedBounds{}
	}
	b := node.paramBounds[sp.ID]
	db := derivedBounds{pm: pm, uMin: b[0], uMax: b[1]}
	db.canPrune = !idx.opts.DisableDerivedPruning &&
		pm.alphaNorm != 0 &&
		!math.IsInf(db.uMin, 1) && db.uMin <= db.uMax &&
		(!sp.ParamPositive || db.uMin > 0)
	return db
}

// xiBounds maps one value-space bound v into ξ space: the smallest and
// largest scalar projections at which the transform can cross v for any
// parameter in the node's interval.
func (db derivedBounds) xiBounds(sp *measure.Spec, v float64, numSamples int) (lo, hi float64) {
	tLo, tHi := sp.TBounds(v, db.uMin, db.uMax, numSamples)
	return tLo / db.pm.alphaNorm, tHi / db.pm.alphaNorm
}

// rangeXiBounds maps a clipped value interval [lo, hi] into the ξ geometry of
// one node: the conservative and definite bounds of the low-T and high-T ends
// of the matching T interval.  A bound that sits exactly at the clamp extreme
// the transform plateaus to on that end is satisfied by the entire plateau —
// arbitrarily large |T| — so that end is unbounded rather than inverted: a
// stale transform whose propagated T overshoots the parameter interval still
// lands inside the scan window and is resolved by exact evaluation.
func (db derivedBounds) rangeXiBounds(sp *measure.Spec, lo, hi float64, numSamples int) (fromLo, fromHi, toLo, toHi float64) {
	vFrom, vTo := lo, hi
	if sp.Decreasing {
		vFrom, vTo = hi, lo
	}
	fromLo, fromHi = db.xiBounds(sp, vFrom, numSamples)
	toLo, toHi = db.xiBounds(sp, vTo, numSamples)
	if sp.Bounded {
		// The value the transform plateaus to as T → −∞ / +∞.
		lowExtreme, highExtreme := sp.RangeMin, sp.RangeMax
		if sp.Decreasing {
			lowExtreme, highExtreme = sp.RangeMax, sp.RangeMin
		}
		if vFrom == lowExtreme {
			fromLo, fromHi = math.Inf(-1), math.Inf(-1)
		}
		if vTo == highExtreme {
			toLo, toHi = math.Inf(1), math.Inf(1)
		}
	}
	return fromLo, fromHi, toLo, toHi
}

// padBound nudges a pruning boundary outward (dir = −1 toward smaller ξ,
// +1 toward larger) by a relative epsilon.  The bound tests and the exact
// per-entry evaluation round differently (ξ·‖α‖ reconstructs t inexactly), so
// an entry sitting within floating-point distance of a boundary could be
// blind-accepted by the bound while exact evaluation rejects it — or be
// skipped while evaluation accepts it.  Widening the conservative bounds and
// shrinking the definite region by this margin routes every ambiguous entry
// through exact evaluation, which is the ground truth: results with and
// without pruning stay identical.
func padBound(x float64, dir float64) float64 {
	if math.IsInf(x, 0) {
		return x
	}
	return x + dir*1e-9*(1+math.Abs(x))
}

// nodeDerivedThreshold scans one pivot node for a D-measure MET query.  The
// spec's transform direction decides which side of the tree can be skipped:
// for increasing transforms "value > τ" keeps large ξ, for decreasing ones it
// keeps small ξ; the ξ region between the conservative and the definite bound
// is the candidate band whose entries are resolved exactly.
func (idx *Index) nodeDerivedThreshold(node *pivotNode, sp *measure.Spec, tau float64, op ThresholdOp, out []timeseries.Pair) ([]timeseries.Pair, error) {
	db := idx.nodeBounds(node, sp)
	if db.pm == nil {
		return out, fmt.Errorf("%w: base measure %v", ErrMeasureNotIndexed, sp.Base)
	}
	if node.pairs == 0 {
		return out, nil
	}
	include := func(sn *sequenceNode, xi float64) {
		if idx.derivedCompare(db.pm, sn, sp, xi, tau, op) {
			out = append(out, sn.pair)
		}
	}
	evalAll := !db.canPrune
	if sp.Bounded {
		// Probes at or beyond a declared range extreme defeat the inverse
		// transform (the clamp plateaus there): a strict predicate at the
		// extreme matches nothing, and a probe outside the range on the
		// other side is decided by exact evaluation (which still rejects
		// pairs whose value is undefined).
		if (op == Above && tau >= sp.RangeMax) || (op == Below && tau <= sp.RangeMin) {
			return out, nil
		}
		if (op == Above && tau < sp.RangeMin) || (op == Below && tau > sp.RangeMax) {
			evalAll = true
		}
	}
	if evalAll {
		// No pruning possible (or disabled): evaluate every node.
		db.pm.tree.Ascend(func(xi float64, sn *sequenceNode) bool {
			include(sn, xi)
			return true
		})
		return out, nil
	}
	xiLo, xiHi := db.xiBounds(sp, tau, idx.numSamples)
	// keepHigh: the qualifying T (and hence ξ) side is the high side.
	keepHigh := (op == Above) != sp.Decreasing
	if keepHigh {
		// Start the scan at the smallest ξ that could still qualify; beyond
		// the definite bound the predicate holds for every possible parameter.
		scanStart, definite := padBound(xiLo, -1), padBound(xiHi, +1)
		db.pm.tree.AscendGreaterOrEqual(scanStart, func(xi float64, sn *sequenceNode) bool {
			if xi > definite {
				out = append(out, sn.pair)
				return true
			}
			include(sn, xi)
			return true
		})
	} else {
		// Mirror image: scan from the bottom up to the largest ξ that could
		// still qualify.
		scanEnd, definite := padBound(xiHi, +1), padBound(xiLo, -1)
		db.pm.tree.Ascend(func(xi float64, sn *sequenceNode) bool {
			if xi > scanEnd {
				return false
			}
			if xi < definite {
				out = append(out, sn.pair)
				return true
			}
			include(sn, xi)
			return true
		})
	}
	return out, nil
}

// nodeDerivedRange scans one pivot node for a D-measure MER query: the scan
// range in ξ is restricted with the parameter bounds, candidates inside the
// band where membership cannot be decided from the bounds alone are resolved
// exactly.
func (idx *Index) nodeDerivedRange(node *pivotNode, sp *measure.Spec, lo, hi float64, out []timeseries.Pair) ([]timeseries.Pair, error) {
	db := idx.nodeBounds(node, sp)
	if db.pm == nil {
		return out, fmt.Errorf("%w: base measure %v", ErrMeasureNotIndexed, sp.Base)
	}
	if node.pairs == 0 {
		return out, nil
	}
	evaluate := func(xi float64, sn *sequenceNode) {
		v, ok := idx.derivedValue(db.pm, sn, sp, xi)
		if ok && v >= lo && v <= hi {
			out = append(out, sn.pair)
		}
	}
	if sp.Bounded {
		// Ranges entirely outside the declared value range match nothing;
		// bounds beyond it clip to the extremes (every value satisfies the
		// clipped side), which keeps the inverse transform inside its domain.
		if hi < sp.RangeMin || lo > sp.RangeMax {
			return out, nil
		}
		lo = math.Max(lo, sp.RangeMin)
		hi = math.Min(hi, sp.RangeMax)
	}
	if !db.canPrune {
		db.pm.tree.Ascend(func(xi float64, sn *sequenceNode) bool {
			evaluate(xi, sn)
			return true
		})
		return out, nil
	}
	// In T space the value interval [lo, hi] maps to [InvertT(lo), InvertT(hi)]
	// for increasing transforms and to the mirrored interval for decreasing
	// ones, with clamp-plateau ends unbounded (rangeXiBounds).
	fromLo, fromHi, toLo, toHi := db.rangeXiBounds(sp, lo, hi, idx.numSamples)
	scanStart, scanEnd := padBound(fromLo, -1), padBound(toHi, +1)
	// Inside (definiteLo, definiteHi) the value is within [lo, hi] for every
	// possible parameter (case I of Fig. 8(b)); such nodes are accepted
	// without evaluating the exact value.
	definiteLo, definiteHi := padBound(fromHi, +1), padBound(toLo, -1)
	db.pm.tree.AscendRange(scanStart, scanEnd, func(xi float64, sn *sequenceNode) bool {
		if xi > definiteLo && xi < definiteHi {
			out = append(out, sn.pair)
			return true
		}
		evaluate(xi, sn)
		return true
	})
	return out, nil
}

// derivedValue computes the exact derived measure of a sequence node from
// index-resident quantities: the spec transform of ‖α‖·ξ and the stored
// parameter.
func (idx *Index) derivedValue(pm *pivotMeasure, sn *sequenceNode, sp *measure.Spec, xi float64) (float64, bool) {
	u, ok := sn.params[sp.ID]
	if !ok {
		return 0, false
	}
	v, err := sp.Value(pm.alphaNorm*xi, u, idx.numSamples)
	if err != nil {
		return 0, false
	}
	return v, true
}

// derivedCompare evaluates the exact derived value of a candidate node and
// compares it against the threshold.
func (idx *Index) derivedCompare(pm *pivotMeasure, sn *sequenceNode, sp *measure.Spec,
	xi, tau float64, op ThresholdOp) bool {
	v, ok := idx.derivedValue(pm, sn, sp, xi)
	if !ok {
		return false
	}
	if op == Above {
		return v > tau
	}
	return v < tau
}
