package scape

import (
	"fmt"

	"affinity/internal/btree"
	"affinity/internal/measure"
	"affinity/internal/stats"
	"affinity/internal/symex"
	"affinity/internal/timeseries"
)

// BuildLocationOnly constructs an index holding only the global per-series
// location trees — no pivot nodes.  A sharded coordinator needs this because
// location estimates are restriction-dependent: buildLocationTrees picks each
// series' estimating relationship as the minimum canonical pair over the
// WHOLE relationship set, so a shard's restricted set can pick a different
// relationship than a single global engine would.  The coordinator therefore
// answers L-measure index queries from one location-only index built over the
// union of all shards' relationships, which is byte-identical to the
// single-engine index's location trees, while the shards themselves index no
// L-measures at all.
func BuildLocationOnly(d *timeseries.DataMatrix, rel *symex.Result, opts Options) (*Index, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if rel == nil || len(rel.Relationships) == 0 {
		return nil, fmt.Errorf("scape: no affine relationships to index")
	}
	opts = opts.withDefaults()
	for _, m := range opts.LocationMeasures {
		sp, ok := measure.Find(m)
		if !ok || !sp.Location() {
			return nil, fmt.Errorf("%w: %v is not an L-measure", ErrBadQuery, m)
		}
	}
	idx := &Index{
		opts:         opts,
		byPivot:      make(map[symex.Pivot]*pivotNode),
		location:     make(map[stats.Measure]*btree.Tree[seriesEntry]),
		pairMeasures: make(map[stats.Measure]bool),
		derivedSet:   make(map[stats.Measure]bool),
		locationSet:  make(map[stats.Measure]bool),
		numSamples:   d.NumSamples(),
		numSeries:    d.NumSeries(),
	}
	for _, m := range opts.LocationMeasures {
		idx.locationSet[m] = true
	}
	if len(opts.LocationMeasures) > 0 {
		if err := idx.buildLocationTrees(d, rel); err != nil {
			return nil, err
		}
	}
	idx.stats.IndexedLMeasures = len(idx.locationSet)
	return idx, nil
}
