package scape

import (
	"errors"
	"testing"

	"affinity/internal/stats"
)

// estimateQueries spans both query forms over a spread of thresholds wide
// enough to cover near-empty and near-full result sets.
func estimateQueries(m stats.Measure) []PairQuery {
	return []PairQuery{
		{Measure: m, Tau: 0.9, Op: Above},
		{Measure: m, Tau: 0.2, Op: Above},
		{Measure: m, Tau: -0.5, Op: Above},
		{Measure: m, Tau: 0.6, Op: Below},
		{Measure: m, Tau: -0.9, Op: Below},
		{Measure: m, Range: true, Lo: -0.3, Hi: 0.7},
		{Measure: m, Range: true, Lo: 0.95, Hi: 1.0},
	}
}

// TestEstimateSelectivityExactClasses pins that T- and L-measure estimates
// equal the actual result sizes exactly: both are derived from the same
// modified bounds, one by counting subtrees and one by scanning them.
func TestEstimateSelectivityExactClasses(t *testing.T) {
	d, rel := testDataset(t, 11, 18, 90)
	idx, err := Build(d, rel, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []stats.Measure{stats.Covariance, stats.DotProduct} {
		for _, q := range estimateQueries(m) {
			sel, err := idx.EstimateSelectivity(q)
			if err != nil {
				t.Fatalf("%v %+v: %v", m, q, err)
			}
			if !sel.Exact || sel.Candidates != 0 {
				t.Fatalf("%v %+v: T-measure estimate should be exact with no candidates: %+v", m, q, sel)
			}
			var got []interface{}
			if q.Range {
				pairs, err := idx.PairRange(m, q.Lo, q.Hi)
				if err != nil {
					t.Fatal(err)
				}
				got = make([]interface{}, len(pairs))
			} else {
				pairs, err := idx.PairThreshold(m, q.Tau, q.Op)
				if err != nil {
					t.Fatal(err)
				}
				got = make([]interface{}, len(pairs))
			}
			if sel.Rows != len(got) {
				t.Errorf("%v %+v: estimated %d rows, actual %d", m, q, sel.Rows, len(got))
			}
		}
	}
	for _, m := range stats.LMeasures() {
		for _, q := range estimateQueries(m) {
			sel, err := idx.EstimateSelectivity(q)
			if err != nil {
				t.Fatalf("%v %+v: %v", m, q, err)
			}
			if !sel.Exact {
				t.Fatalf("%v: L-measure estimate should be exact", m)
			}
			var actual int
			if q.Range {
				ids, err := idx.SeriesRange(m, q.Lo, q.Hi)
				if err != nil {
					t.Fatal(err)
				}
				actual = len(ids)
			} else {
				ids, err := idx.SeriesThreshold(m, q.Tau, q.Op)
				if err != nil {
					t.Fatal(err)
				}
				actual = len(ids)
			}
			if sel.Rows != actual {
				t.Errorf("%v %+v: estimated %d rows, actual %d", m, q, sel.Rows, actual)
			}
		}
	}
}

// TestEstimateSelectivityDerivedBounds pins that the D-measure estimate
// brackets the actual result: per pivot node the actual count lies within
// [definite, definite + band] and Rows sits mid-band, so across nodes the
// actual count is within Candidates of Rows.
func TestEstimateSelectivityDerivedBounds(t *testing.T) {
	d, rel := testDataset(t, 12, 18, 90)
	idx, err := Build(d, rel, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range SeparableDerivedMeasures() {
		for _, q := range estimateQueries(m) {
			sel, err := idx.EstimateSelectivity(q)
			if err != nil {
				t.Fatalf("%v %+v: %v", m, q, err)
			}
			var actual int
			if q.Range {
				pairs, err := idx.PairRange(m, q.Lo, q.Hi)
				if err != nil {
					t.Fatal(err)
				}
				actual = len(pairs)
			} else {
				pairs, err := idx.PairThreshold(m, q.Tau, q.Op)
				if err != nil {
					t.Fatal(err)
				}
				actual = len(pairs)
			}
			if actual < sel.Rows-sel.Candidates || actual > sel.Rows+sel.Candidates {
				t.Errorf("%v %+v: actual %d outside estimate bracket [%d, %d] (sel %+v)",
					m, q, actual, sel.Rows-sel.Candidates, sel.Rows+sel.Candidates, sel)
			}
		}
	}
}

// TestEstimateSelectivityErrors pins the estimator's error behaviour: the
// same typed errors as the query paths.
func TestEstimateSelectivityErrors(t *testing.T) {
	d, rel := testDataset(t, 13, 10, 60)
	idx, err := Build(d, rel, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := idx.EstimateSelectivity(PairQuery{Measure: stats.Jaccard, Tau: 0.5, Op: Above}); !errors.Is(err, ErrMeasureNotIndexed) {
		t.Fatalf("jaccard estimate err = %v, want ErrMeasureNotIndexed", err)
	}
	if _, err := idx.EstimateSelectivity(PairQuery{Measure: stats.Correlation, Range: true, Lo: 1, Hi: -1}); !errors.Is(err, ErrBadQuery) {
		t.Fatalf("empty range err = %v, want ErrBadQuery", err)
	}
	if _, err := idx.EstimateSelectivity(PairQuery{Measure: stats.Correlation, Op: ThresholdOp(7)}); !errors.Is(err, ErrBadQuery) {
		t.Fatalf("bad op err = %v, want ErrBadQuery", err)
	}
	if _, err := idx.EstimateSelectivity(PairQuery{Measure: stats.Measure(99), Tau: 0, Op: Above}); err == nil {
		t.Fatal("unknown measure should error")
	}
}
