package scape

import (
	"errors"
	"testing"

	"affinity/internal/interval"
	"affinity/internal/stats"
)

// estimateQueries spans both interval shapes (half-bounded MET and bounded
// MER predicates) over a spread of thresholds wide enough to cover near-empty
// and near-full result sets.
func estimateQueries(m stats.Measure) []PairQuery {
	return []PairQuery{
		{Measure: m, Interval: interval.GreaterThan(0.9)},
		{Measure: m, Interval: interval.GreaterThan(0.2)},
		{Measure: m, Interval: interval.GreaterThan(-0.5)},
		{Measure: m, Interval: interval.LessThan(0.6)},
		{Measure: m, Interval: interval.LessThan(-0.9)},
		{Measure: m, Interval: interval.Between(-0.3, 0.7)},
		{Measure: m, Interval: interval.Between(0.95, 1.0)},
	}
}

// TestEstimateSelectivityExactClasses pins that T- and L-measure estimates
// equal the actual result sizes exactly: both are derived from the same
// modified bounds, one by counting subtrees and one by scanning them.
func TestEstimateSelectivityExactClasses(t *testing.T) {
	d, rel := testDataset(t, 11, 18, 90)
	idx, err := Build(d, rel, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []stats.Measure{stats.Covariance, stats.DotProduct} {
		for _, q := range estimateQueries(m) {
			sel, err := idx.EstimateSelectivity(q)
			if err != nil {
				t.Fatalf("%v %+v: %v", m, q, err)
			}
			if !sel.Exact || sel.Candidates != 0 {
				t.Fatalf("%v %+v: T-measure estimate should be exact with no candidates: %+v", m, q, sel)
			}
			pairs, err := idx.PairInterval(m, q.Interval)
			if err != nil {
				t.Fatal(err)
			}
			if sel.Rows != len(pairs) {
				t.Errorf("%v %+v: estimated %d rows, actual %d", m, q, sel.Rows, len(pairs))
			}
		}
	}
	for _, m := range stats.LMeasures() {
		for _, q := range estimateQueries(m) {
			sel, err := idx.EstimateSelectivity(q)
			if err != nil {
				t.Fatalf("%v %+v: %v", m, q, err)
			}
			if !sel.Exact {
				t.Fatalf("%v: L-measure estimate should be exact", m)
			}
			ids, err := idx.SeriesInterval(m, q.Interval)
			if err != nil {
				t.Fatal(err)
			}
			if sel.Rows != len(ids) {
				t.Errorf("%v %+v: estimated %d rows, actual %d", m, q, sel.Rows, len(ids))
			}
		}
	}
}

// TestEstimateSelectivityDerivedBounds pins that the D-measure estimate
// brackets the actual result: per pivot node the actual count lies within
// [definite, definite + band] and Rows sits mid-band, so across nodes the
// actual count is within Candidates of Rows.
func TestEstimateSelectivityDerivedBounds(t *testing.T) {
	d, rel := testDataset(t, 12, 18, 90)
	idx, err := Build(d, rel, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range SeparableDerivedMeasures() {
		for _, q := range estimateQueries(m) {
			sel, err := idx.EstimateSelectivity(q)
			if err != nil {
				t.Fatalf("%v %+v: %v", m, q, err)
			}
			pairs, err := idx.PairInterval(m, q.Interval)
			if err != nil {
				t.Fatal(err)
			}
			actual := len(pairs)
			if actual < sel.Rows-sel.Candidates || actual > sel.Rows+sel.Candidates {
				t.Errorf("%v %+v: actual %d outside estimate bracket [%d, %d] (sel %+v)",
					m, q, actual, sel.Rows-sel.Candidates, sel.Rows+sel.Candidates, sel)
			}
		}
	}
}

// TestEstimateSelectivityErrors pins the estimator's error behaviour: the
// same typed errors as the query paths.
func TestEstimateSelectivityErrors(t *testing.T) {
	d, rel := testDataset(t, 13, 10, 60)
	idx, err := Build(d, rel, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := idx.EstimateSelectivity(PairQuery{Measure: stats.Jaccard, Interval: interval.GreaterThan(0.5)}); !errors.Is(err, ErrMeasureNotIndexed) {
		t.Fatalf("jaccard estimate err = %v, want ErrMeasureNotIndexed", err)
	}
	if _, err := idx.EstimateSelectivity(PairQuery{Measure: stats.Correlation, Interval: interval.Between(1, -1)}); !errors.Is(err, ErrBadQuery) {
		t.Fatalf("empty interval err = %v, want ErrBadQuery", err)
	}
	if _, err := idx.EstimateSelectivity(PairQuery{Measure: stats.Measure(99), Interval: interval.GreaterThan(0)}); err == nil {
		t.Fatal("unknown measure should error")
	}
}
