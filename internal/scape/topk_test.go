package scape

import (
	"errors"
	"math/rand"
	"sort"
	"testing"

	"affinity/internal/interval"
	"affinity/internal/stats"
	"affinity/internal/timeseries"
)

// topKOracle sorts the index's own value representation of every pair under
// the shared total order and returns the best k — the reference PairTopK must
// reproduce exactly, including tie-breaks.
func topKOracle(estimates map[timeseries.Pair]float64, k int, largest bool) ([]timeseries.Pair, []float64) {
	type entry struct {
		pair  timeseries.Pair
		value float64
	}
	entries := make([]entry, 0, len(estimates))
	for p, v := range estimates {
		entries = append(entries, entry{pair: p, value: v})
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].value != entries[j].value {
			if largest {
				return entries[i].value > entries[j].value
			}
			return entries[i].value < entries[j].value
		}
		return pairLess(entries[i].pair, entries[j].pair)
	})
	if len(entries) > k {
		entries = entries[:k]
	}
	pairs := make([]timeseries.Pair, len(entries))
	values := make([]float64, len(entries))
	for i, e := range entries {
		pairs[i] = e.pair
		values[i] = e.value
	}
	return pairs, values
}

// TestPairTopKMatchesIndexValues pins the best-first traversal against a
// sort of the index's own per-pair values, for T- and D-measures (increasing
// and decreasing transforms), both directions and several k.  Values must
// match exactly; pairs may differ only where values tie within rounding of
// each other at the k boundary.
func TestPairTopKMatchesIndexValues(t *testing.T) {
	d, rel := testDataset(t, 21, 16, 90)
	idx, err := Build(d, rel, Options{})
	if err != nil {
		t.Fatal(err)
	}
	entries := idx.Stats().SequenceNodes
	for _, m := range []stats.Measure{
		stats.Covariance, stats.DotProduct, stats.Correlation,
		stats.Cosine, stats.EuclideanDistance, stats.AngularDistance,
	} {
		// The index's own representation of every pair, via the same
		// evaluator the scans use.
		estimates := make(map[timeseries.Pair]float64, entries)
		for e := range rel.Relationships {
			v, err := idx.PairValue(m, e)
			if err != nil {
				continue
			}
			estimates[e] = v
		}
		for _, largest := range []bool{true, false} {
			for _, k := range []int{1, 5, entries + 3} {
				pairs, values, examined, err := idx.PairTopK(m, k, largest)
				if err != nil {
					t.Fatalf("%v k=%d largest=%v: %v", m, k, largest, err)
				}
				wantPairs, wantValues := topKOracle(estimates, k, largest)
				if len(pairs) != len(wantPairs) || len(values) != len(pairs) {
					t.Fatalf("%v k=%d largest=%v: got %d results, want %d",
						m, k, largest, len(pairs), len(wantPairs))
				}
				for i := range pairs {
					if pairs[i] != wantPairs[i] || values[i] != wantValues[i] {
						t.Fatalf("%v k=%d largest=%v entry %d: got (%v, %v), want (%v, %v)",
							m, k, largest, i, pairs[i], values[i], wantPairs[i], wantValues[i])
					}
				}
				if examined <= 0 || examined > entries {
					t.Fatalf("%v: examined %d of %d entries", m, examined, entries)
				}
			}
		}
	}
}

// TestPairTopKPrunes pins that small-k traversals stop before examining
// every entry on a measure without clamp plateaus.
func TestPairTopKPrunes(t *testing.T) {
	d, rel := testDataset(t, 22, 18, 90)
	idx, err := Build(d, rel, Options{})
	if err != nil {
		t.Fatal(err)
	}
	entries := idx.Stats().SequenceNodes
	_, _, examined, err := idx.PairTopK(stats.Covariance, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	if examined >= entries {
		t.Fatalf("covariance top-1 examined %d of %d entries — no pruning", examined, entries)
	}
	// Disabling derived pruning removes the bounds but not correctness.
	unpruned, err := Build(d, rel, Options{DisableDerivedPruning: true})
	if err != nil {
		t.Fatal(err)
	}
	a, av, _, err := idx.PairTopK(stats.Correlation, 5, true)
	if err != nil {
		t.Fatal(err)
	}
	b, bv, _, err := unpruned.PairTopK(stats.Correlation, 5, true)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] || av[i] != bv[i] {
			t.Fatalf("entry %d: pruned (%v, %v) != unpruned (%v, %v)", i, a[i], av[i], b[i], bv[i])
		}
	}
}

// TestSeriesTopK pins L-measure top-k against the location tree's own
// contents: a full-k query returns every series in value order with id
// tie-breaks, and smaller k are prefixes.
func TestSeriesTopK(t *testing.T) {
	d, rel := testDataset(t, 23, 14, 70)
	idx, err := Build(d, rel, Options{})
	if err != nil {
		t.Fatal(err)
	}
	n := d.NumSeries()
	for _, m := range stats.LMeasures() {
		for _, largest := range []bool{true, false} {
			ids, values, err := idx.SeriesTopK(m, n, largest)
			if err != nil {
				t.Fatal(err)
			}
			if len(ids) != n || len(values) != n {
				t.Fatalf("%v: full ranking %d/%d of %d", m, len(ids), len(values), n)
			}
			for i := 1; i < n; i++ {
				if (largest && values[i] > values[i-1]) || (!largest && values[i] < values[i-1]) {
					t.Fatalf("%v largest=%v: values out of order at %d", m, largest, i)
				}
				if values[i] == values[i-1] && ids[i] < ids[i-1] {
					t.Fatalf("%v: id tie-break violated at %d", m, i)
				}
			}
			top, topVals, err := idx.SeriesTopK(m, 4, largest)
			if err != nil {
				t.Fatal(err)
			}
			for i := range top {
				if top[i] != ids[i] || topVals[i] != values[i] {
					t.Fatalf("%v: top-4 not a prefix of the full ranking", m)
				}
			}
		}
	}
	if _, _, err := idx.SeriesTopK(stats.Mean, 0, true); !errors.Is(err, ErrBadQuery) {
		t.Fatalf("k=0 err = %v, want ErrBadQuery", err)
	}
	if _, _, err := idx.SeriesTopK(stats.Covariance, 3, true); !errors.Is(err, ErrMeasureNotIndexed) {
		t.Fatalf("T-measure series top-k err = %v, want ErrMeasureNotIndexed", err)
	}
}

// TestPairTopKErrors pins the traversal's typed errors.
func TestPairTopKErrors(t *testing.T) {
	d, rel := testDataset(t, 24, 8, 40)
	idx, err := Build(d, rel, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := idx.PairTopK(stats.Correlation, 0, true); !errors.Is(err, ErrBadQuery) {
		t.Fatalf("k=0 err = %v, want ErrBadQuery", err)
	}
	if _, _, _, err := idx.PairTopK(stats.Mean, 3, true); !errors.Is(err, ErrBadQuery) {
		t.Fatalf("L-measure pair top-k err = %v, want ErrBadQuery", err)
	}
	if _, _, _, err := idx.PairTopK(stats.Jaccard, 3, true); !errors.Is(err, ErrMeasureNotIndexed) {
		t.Fatalf("jaccard top-k err = %v, want ErrMeasureNotIndexed", err)
	}
}

// TestPairBatchMatchesSingleIntervals pins the shared-traversal batch path
// against single interval scans, element for element, mixing measure classes
// and interval shapes.
func TestPairBatchMatchesSingleIntervals(t *testing.T) {
	d, rel := testDataset(t, 25, 15, 80)
	idx, err := Build(d, rel, Options{Parallelism: 3})
	if err != nil {
		t.Fatal(err)
	}
	qs := []PairQuery{
		{Measure: stats.Covariance, Interval: interval.GreaterThan(0)},
		{Measure: stats.Correlation, Interval: interval.Between(0.5, 1)},
		{Measure: stats.EuclideanDistance, Interval: interval.LessThan(2)},
		{Measure: stats.Cosine, Interval: interval.AtLeast(0.7)},
		{Measure: stats.DotProduct, Interval: interval.AtMost(10)},
	}
	batch, err := idx.PairBatch(qs)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range qs {
		single, err := idx.PairInterval(q.Measure, q.Interval)
		if err != nil {
			t.Fatal(err)
		}
		if len(batch[i]) != len(single) {
			t.Fatalf("query %d: batch %d vs single %d results", i, len(batch[i]), len(single))
		}
		for j := range single {
			if batch[i][j] != single[j] {
				t.Fatalf("query %d entry %d: batch %v != single %v", i, j, batch[i][j], single[j])
			}
		}
	}
	if _, err := idx.PairBatch([]PairQuery{{Measure: stats.Correlation, Interval: interval.Between(1, 0)}}); !errors.Is(err, ErrBadQuery) {
		t.Fatalf("empty-interval batch err = %v, want ErrBadQuery", err)
	}
}

// TestTopHeapProperties fuzz-checks the bounded heap against a plain
// sort-and-truncate reference over random offer sequences.
func TestTopHeapProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 50; trial++ {
		k := 1 + rng.Intn(8)
		largest := rng.Intn(2) == 0
		h := NewTopHeap(k, largest)
		estimates := make(map[timeseries.Pair]float64)
		n := 5 + rng.Intn(40)
		for i := 0; i < n; i++ {
			u := timeseries.SeriesID(rng.Intn(12))
			v := timeseries.SeriesID(rng.Intn(12))
			if u == v {
				continue
			}
			p, err := timeseries.NewPair(u, v)
			if err != nil {
				t.Fatal(err)
			}
			value := float64(rng.Intn(6)) // few distinct values: dense ties
			if _, seen := estimates[p]; seen {
				continue // keep the reference a function pair -> value
			}
			estimates[p] = value
			h.Offer(p, value)
		}
		if want := minInt(k, len(estimates)); h.Len() != want {
			t.Fatalf("trial %d: heap kept %d, want %d", trial, h.Len(), want)
		}
		if full := h.Full(); full != (len(estimates) >= k) {
			t.Fatalf("trial %d: Full() = %v with %d offers", trial, full, len(estimates))
		}
		pairs, values := h.Sorted()
		wantPairs, wantValues := topKOracle(estimates, k, largest)
		for i := range wantPairs {
			if pairs[i] != wantPairs[i] || values[i] != wantValues[i] {
				t.Fatalf("trial %d entry %d: got (%v, %v), want (%v, %v)",
					trial, i, pairs[i], values[i], wantPairs[i], wantValues[i])
			}
		}
		if vk, ok := h.Threshold(); ok && vk != values[len(values)-1] {
			t.Fatalf("trial %d: Threshold() = %v, want worst retained %v", trial, vk, values[len(values)-1])
		}
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
