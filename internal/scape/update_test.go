package scape

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"affinity/internal/cluster"
	"affinity/internal/interval"
	"affinity/internal/stats"
	"affinity/internal/symex"
	"affinity/internal/timeseries"
)

// slidingDataset builds two overlapping windows of the same generated series
// (the second slid forward by slide samples) plus the SYMEX+ result over the
// first window.
func slidingDataset(t testing.TB, seed int64, n, m, slide int) (d1, d2 *timeseries.DataMatrix, rel1 *symex.Result) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	const groups = 3
	long := m + slide
	bases := make([][]float64, groups)
	for g := range bases {
		b := make([]float64, long)
		for i := range b {
			b[i] = math.Sin(float64(i)*0.03*float64(g+1)) + 0.4*math.Cos(float64(i)*0.011*float64(g+2))
		}
		bases[g] = b
	}
	w1 := make([][]float64, n)
	w2 := make([][]float64, n)
	for s := range w1 {
		g := s % groups
		scale := 0.5 + rng.Float64()*2
		offset := rng.NormFloat64() * 0.5
		col := make([]float64, long)
		for i := range col {
			col[i] = scale*bases[g][i] + offset + rng.NormFloat64()*0.02
		}
		w1[s] = col[:m]
		w2[s] = col[slide:]
	}
	var err error
	d1, err = timeseries.NewDataMatrix(w1)
	if err != nil {
		t.Fatal(err)
	}
	d2, err = timeseries.NewDataMatrix(w2)
	if err != nil {
		t.Fatal(err)
	}
	rel1, err = symex.Compute(d1, symex.Options{
		Cluster:            cluster.Config{K: groups, MaxIterations: 10, MinChanges: 0, Seed: 1},
		CachePseudoInverse: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d1, d2, rel1
}

// assertIndexEquivalent runs the full query surface over both indexes and
// requires byte-identical answers (same values, same order).
func assertIndexEquivalent(t *testing.T, got, want *Index) {
	t.Helper()
	measures := []stats.Measure{
		stats.Covariance, stats.DotProduct,
		stats.Correlation, stats.Cosine,
	}
	intervals := []interval.Interval{
		interval.AtLeast(0.1), interval.AtMost(-0.05),
		interval.Between(-0.5, 0.5), interval.New(interval.Open(0), interval.Open(1)),
	}
	for _, m := range measures {
		for _, iv := range intervals {
			gp, err1 := got.PairInterval(m, iv)
			wp, err2 := want.PairInterval(m, iv)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("PairInterval(%v, %v) error mismatch: %v vs %v", m, iv, err1, err2)
			}
			if len(gp) != len(wp) {
				t.Fatalf("PairInterval(%v, %v): %d pairs vs %d", m, iv, len(gp), len(wp))
			}
			for i := range gp {
				if gp[i] != wp[i] {
					t.Fatalf("PairInterval(%v, %v)[%d] = %v, want %v", m, iv, i, gp[i], wp[i])
				}
			}
		}
		gtp, gtv, gScanned, err1 := got.PairTopK(m, 7, true)
		wtp, wtv, _, err2 := want.PairTopK(m, 7, true)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("PairTopK(%v) error mismatch: %v vs %v", m, err1, err2)
		}
		_ = gScanned
		if len(gtp) != len(wtp) {
			t.Fatalf("PairTopK(%v): %d vs %d results", m, len(gtp), len(wtp))
		}
		for i := range gtp {
			if gtp[i] != wtp[i] || gtv[i] != wtv[i] {
				t.Fatalf("PairTopK(%v)[%d] = %v/%v, want %v/%v", m, i, gtp[i], gtv[i], wtp[i], wtv[i])
			}
		}
	}
	for _, m := range []stats.Measure{stats.Mean, stats.Median} {
		gs, err1 := got.SeriesInterval(m, interval.AtLeast(-0.2))
		ws, err2 := want.SeriesInterval(m, interval.AtLeast(-0.2))
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("SeriesInterval(%v) error mismatch: %v vs %v", m, err1, err2)
		}
		if len(gs) != len(ws) {
			t.Fatalf("SeriesInterval(%v): %d vs %d", m, len(gs), len(ws))
		}
		for i := range gs {
			if gs[i] != ws[i] {
				t.Fatalf("SeriesInterval(%v)[%d] = %v, want %v", m, i, gs[i], ws[i])
			}
		}
		gid, gv, err1 := got.SeriesTopK(m, 5, false)
		wid, wv, err2 := want.SeriesTopK(m, 5, false)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("SeriesTopK(%v) error mismatch: %v vs %v", m, err1, err2)
		}
		for i := range gid {
			if gid[i] != wid[i] || gv[i] != wv[i] {
				t.Fatalf("SeriesTopK(%v)[%d] = %v/%v, want %v/%v", m, i, gid[i], gv[i], wid[i], wv[i])
			}
		}
	}
}

// staleSubset deterministically picks a fraction of the assignments as stale.
func staleSubset(rel *symex.Result, frac float64, seed int64) map[timeseries.Pair]bool {
	list := rel.AssignmentList()
	pairs := make([]timeseries.Pair, len(list))
	for i, a := range list {
		pairs[i] = a.Pair
	}
	sort.Slice(pairs, func(i, j int) bool { return pairLess(pairs[i], pairs[j]) })
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(pairs), func(i, j int) { pairs[i], pairs[j] = pairs[j], pairs[i] })
	k := int(frac * float64(len(pairs)))
	out := make(map[timeseries.Pair]bool, k)
	for _, p := range pairs[:k] {
		out[p] = true
	}
	return out
}

func TestUpdateMatchesFullBuild(t *testing.T) {
	d1, d2, rel1 := slidingDataset(t, 11, 36, 240, 24)
	opts := Options{Parallelism: 2}
	idx1, err := Build(d1, rel1, opts)
	if err != nil {
		t.Fatal(err)
	}

	for _, frac := range []float64{0, 0.1, 0.3} {
		stale := staleSubset(rel1, frac, 5)
		rel2, _, err := symex.Refit(d2, rel1, symex.RefitOptions{Stale: stale, Parallelism: 2})
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range []int{1, 2, 8} {
			upd, us, err := idx1.Update(d2, rel2, stale, UpdateOptions{Parallelism: p})
			if err != nil {
				t.Fatalf("frac=%v P=%d: %v", frac, p, err)
			}
			if us.FellBack {
				t.Fatalf("frac=%v P=%d: unexpected fallback (stale fraction %v)", frac, p, us.StaleFraction)
			}
			if us.StoresShared+us.StoresCloned+us.StoresRebuilt != upd.NumPivots() {
				t.Fatalf("store accounting %d+%d+%d != %d pivots",
					us.StoresShared, us.StoresCloned, us.StoresRebuilt, upd.NumPivots())
			}
			if frac == 0 && us.StoresCloned != 0 {
				t.Fatalf("frac=0 cloned %d stores", us.StoresCloned)
			}
			if frac > 0 && us.EntriesInserted == 0 {
				t.Fatalf("frac=%v inserted no entries", frac)
			}
			full, err := Build(d2, rel2, opts)
			if err != nil {
				t.Fatal(err)
			}
			assertIndexEquivalent(t, upd, full)
		}
	}
}

func TestUpdateCrossoverFallsBackToBuild(t *testing.T) {
	d1, d2, rel1 := slidingDataset(t, 17, 24, 200, 20)
	idx1, err := Build(d1, rel1, Options{})
	if err != nil {
		t.Fatal(err)
	}

	// A nil stale set (everything stale) must fall back.
	rel2, _, err := symex.Refit(d2, rel1, symex.RefitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	upd, us, err := idx1.Update(d2, rel2, nil, UpdateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !us.FellBack || us.StaleFraction != 1 {
		t.Fatalf("nil stale set: FellBack=%v fraction=%v", us.FellBack, us.StaleFraction)
	}
	full, err := Build(d2, rel2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	assertIndexEquivalent(t, upd, full)

	// A stale fraction above an artificially low crossover must fall back too.
	stale := staleSubset(rel1, 0.2, 3)
	rel3, _, err := symex.Refit(d2, rel1, symex.RefitOptions{Stale: stale})
	if err != nil {
		t.Fatal(err)
	}
	_, us, err = idx1.Update(d2, rel3, stale, UpdateOptions{Crossover: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if !us.FellBack {
		t.Fatalf("stale fraction %v above crossover %v did not fall back", us.StaleFraction, us.Crossover)
	}
	// And below the default crossover it must not.
	_, us, err = idx1.Update(d2, rel3, stale, UpdateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if us.FellBack {
		t.Fatalf("stale fraction %v under default crossover fell back", us.StaleFraction)
	}
}

func TestUpdateChainedEpochs(t *testing.T) {
	// Three consecutive slides, each incrementally updated from the last,
	// must still match a from-scratch build of the final window.
	const n, m, slide, epochs = 30, 220, 16, 3
	rng := rand.New(rand.NewSource(23))
	const groups = 3
	long := m + slide*epochs
	series := make([][]float64, n)
	for s := range series {
		g := s % groups
		scale := 0.5 + rng.Float64()*2
		offset := rng.NormFloat64() * 0.5
		col := make([]float64, long)
		for i := range col {
			base := math.Sin(float64(i)*0.03*float64(g+1)) + 0.4*math.Cos(float64(i)*0.011*float64(g+2))
			col[i] = scale*base + offset + rng.NormFloat64()*0.02
		}
		series[s] = col
	}
	window := func(e int) *timeseries.DataMatrix {
		w := make([][]float64, n)
		for s := range w {
			w[s] = series[s][e*slide : e*slide+m]
		}
		d, err := timeseries.NewDataMatrix(w)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}

	d0 := window(0)
	rel, err := symex.Compute(d0, symex.Options{
		Cluster:            cluster.Config{K: groups, MaxIterations: 10, MinChanges: 0, Seed: 1},
		CachePseudoInverse: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	idx, err := Build(d0, rel, Options{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	for e := 1; e <= epochs; e++ {
		d := window(e)
		stale := staleSubset(rel, 0.15, int64(e))
		rel2, _, err := symex.Refit(d, rel, symex.RefitOptions{Stale: stale, Parallelism: 2})
		if err != nil {
			t.Fatal(err)
		}
		idx2, us, err := idx.Update(d, rel2, stale, UpdateOptions{Parallelism: 2})
		if err != nil {
			t.Fatal(err)
		}
		if us.FellBack {
			t.Fatalf("epoch %d fell back at stale fraction %v", e, us.StaleFraction)
		}
		// The previous epoch's index must remain intact and queryable after
		// the delta was applied (copy-on-write isolation).
		prevFull, err := Build(window(e-1), rel, Options{Parallelism: 2})
		if err != nil {
			t.Fatal(err)
		}
		assertIndexEquivalent(t, idx, prevFull)
		rel, idx = rel2, idx2

		full, err := Build(d, rel2, Options{Parallelism: 2})
		if err != nil {
			t.Fatal(err)
		}
		assertIndexEquivalent(t, idx, full)
	}
}
