// Package scape implements the SCAPE (SCAlar ProjEction) index of Section 5
// of the paper: a measure-agnostic index over affine relationships that
// answers measure threshold (MET) and measure range (MER) queries without
// recomputing the measure for every query.
//
// # Structure
//
// For every pivot pair p_q produced by SYMEX+ the index keeps a pivot node
// with, per indexed measure, the vector α_q and its norm ‖α_q‖; the sequence
// pairs assigned to the pivot are stored in sorted containers (B-trees) keyed
// by the scalar projection ξ_qd = α_qᵀβ_qd / ‖α_q‖, where β_qd = (a12, a22,
// b2) is derived purely from the affine relationship (A, b)_e.  Because all
// affine relationships are built with the common series as the first column,
// the measure value of a sequence pair factors exactly as α_qᵀβ_qd = ‖α_q‖·ξ_qd
// (Observation 1 and Table 2):
//
//	covariance:  α = (Σ11(O_p), Σ12(O_p), 0)
//	dot product: α = (Π11(O_p), Π12(O_p), h1(O_p))
//	location:    α = (L1(O_p), L2(O_p), 1)
//
// The scalar projection depends on α and therefore on the measure; the index
// stores one sorted container per (pivot, measure) sharing the sequence-node
// payloads, which keeps the paper's single-index query algorithms intact
// while remaining exactly correct for every measure.  β is computed once per
// relationship and never changes.
//
// D-measures are indexed through their base T-measure: each sequence node
// additionally stores the separable normalizer U_e of every indexed
// D-measure, and each pivot node stores the minimum and maximum normalizer
// among its sequence nodes (U^min_q, U^max_q), which drive the index pruning
// of Section 5.3.
//
// Location (L-) measures apply to single series rather than pairs; the index
// maintains one global B-tree per L-measure keyed by the series' measure
// value estimated through an affine relationship (falling back to a direct
// computation for series that only ever appear as the common member).
package scape

import (
	"errors"
	"fmt"
	"math"

	"affinity/internal/btree"
	"affinity/internal/stats"
	"affinity/internal/symex"
	"affinity/internal/timeseries"
)

// ErrMeasureNotIndexed is returned when a query references a measure the
// index was not built for (or that SCAPE cannot index, such as a D-measure
// with a non-separable normalizer).
var ErrMeasureNotIndexed = errors.New("scape: measure not indexed")

// ErrBadQuery is returned for malformed query parameters.
var ErrBadQuery = errors.New("scape: bad query")

// Options configures the index build.
//
// For the measure lists, a nil slice selects the default set while an
// explicitly empty (non-nil) slice selects none of that kind; the latter is
// used by experiments that index a single measure class in isolation.
type Options struct {
	// PairMeasures lists the T-measures to index.  D-measures are answered
	// through their base T-measure and do not need to be listed.  Nil selects
	// all T-measures (covariance and dot product).
	PairMeasures []stats.Measure
	// DerivedMeasures lists the D-measures for which normalizers and pruning
	// bounds should be maintained.  Nil selects every D-measure with a
	// separable normalizer (correlation, cosine, Dice, harmonic mean).
	DerivedMeasures []stats.Measure
	// LocationMeasures lists the L-measures to index over individual series.
	// Nil selects mean, median and mode.
	LocationMeasures []stats.Measure
	// DisableDerivedPruning turns off the U^min/U^max pruning of Section 5.3
	// (every candidate's exact derived value is evaluated instead).  Used by
	// the ablation benchmark; queries return identical results either way.
	DisableDerivedPruning bool
}

func (o Options) withDefaults() Options {
	if o.PairMeasures == nil {
		o.PairMeasures = stats.TMeasures()
	}
	if o.DerivedMeasures == nil {
		o.DerivedMeasures = SeparableDerivedMeasures()
	}
	if o.LocationMeasures == nil {
		o.LocationMeasures = stats.LMeasures()
	}
	return o
}

// SeparableDerivedMeasures returns the D-measures whose normalizer is
// separable per series and therefore indexable by SCAPE (Section 5.1,
// "Indexing D-Measures").  The generalized Jaccard coefficient is excluded:
// its normalizer depends on the dot product itself.
func SeparableDerivedMeasures() []stats.Measure {
	return []stats.Measure{stats.Correlation, stats.Cosine, stats.Dice, stats.HarmonicMean}
}

// sequenceNode is the per-relationship payload shared by all per-measure
// trees of a pivot node.
type sequenceNode struct {
	pair timeseries.Pair
	beta [3]float64
	// normalizers[U] for every indexed D-measure, keyed by measure.
	normalizers map[stats.Measure]float64
}

// pivotMeasure is the per-(pivot, measure) state: α, ‖α‖ and the sorted
// container of sequence nodes keyed by scalar projection.
type pivotMeasure struct {
	alpha     [3]float64
	alphaNorm float64
	tree      *btree.Tree[*sequenceNode]
}

// pivotNode groups everything the index stores for one pivot pair.
type pivotNode struct {
	pivot    symex.Pivot
	measures map[stats.Measure]*pivotMeasure
	// normBounds[measure] = (U^min_q, U^max_q) across the pivot's sequence
	// nodes, for every indexed D-measure.
	normBounds map[stats.Measure][2]float64
	pairs      int
}

// seriesEntry is the payload of the global location trees.
type seriesEntry struct {
	id    timeseries.SeriesID
	value float64
}

// BuildStats summarizes the index contents.
type BuildStats struct {
	Pivots             int
	SequenceNodes      int
	IndexedTMeasures   int
	IndexedDMeasures   int
	IndexedLMeasures   int
	LocationEstimated  int // series whose L-value came from an affine relationship
	LocationComputed   int // series whose L-value was computed directly (fallback)
	DerivedPruningOn   bool
	TotalTreeInsertion int
}

// Index is the SCAPE index.
type Index struct {
	opts    Options
	pivots  []*pivotNode
	byPivot map[symex.Pivot]*pivotNode
	// location[measure] holds the global per-series tree for an L-measure.
	location map[stats.Measure]*btree.Tree[seriesEntry]
	// pairMeasures / derivedSet for quick membership checks.
	pairMeasures map[stats.Measure]bool
	derivedSet   map[stats.Measure]bool
	locationSet  map[stats.Measure]bool
	numSamples   int
	stats        BuildStats
}

// Stats returns build statistics.
func (idx *Index) Stats() BuildStats { return idx.stats }

// NumPivots returns the number of pivot nodes.
func (idx *Index) NumPivots() int { return len(idx.pivots) }

// Build constructs a SCAPE index from the affine relationships produced by
// SYMEX/SYMEX+ over the given data matrix.
func Build(d *timeseries.DataMatrix, rel *symex.Result, opts Options) (*Index, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if rel == nil || len(rel.Relationships) == 0 {
		return nil, fmt.Errorf("scape: no affine relationships to index")
	}
	opts = opts.withDefaults()
	for _, m := range opts.PairMeasures {
		if m.Class() != stats.DispersionClass {
			return nil, fmt.Errorf("%w: %v is not a T-measure", ErrBadQuery, m)
		}
	}
	for _, m := range opts.DerivedMeasures {
		if m.Class() != stats.DerivedClass {
			return nil, fmt.Errorf("%w: %v is not a D-measure", ErrBadQuery, m)
		}
		if !isSeparable(m) {
			return nil, fmt.Errorf("%w: %v has a non-separable normalizer", ErrMeasureNotIndexed, m)
		}
	}
	for _, m := range opts.LocationMeasures {
		if m.Class() != stats.LocationClass {
			return nil, fmt.Errorf("%w: %v is not an L-measure", ErrBadQuery, m)
		}
	}

	idx := &Index{
		opts:         opts,
		byPivot:      make(map[symex.Pivot]*pivotNode),
		location:     make(map[stats.Measure]*btree.Tree[seriesEntry]),
		pairMeasures: make(map[stats.Measure]bool),
		derivedSet:   make(map[stats.Measure]bool),
		locationSet:  make(map[stats.Measure]bool),
		numSamples:   d.NumSamples(),
	}
	for _, m := range opts.PairMeasures {
		idx.pairMeasures[m] = true
	}
	for _, m := range opts.DerivedMeasures {
		idx.derivedSet[m] = true
		// A derived measure needs its base T-measure to be indexed.
		idx.pairMeasures[m.Base()] = true
	}
	for _, m := range opts.LocationMeasures {
		idx.locationSet[m] = true
	}

	// Per-series quantities for separable normalizers (variance and squared
	// norm), computed once in O(n·m).
	perSeries, err := computeSeriesStats(d)
	if err != nil {
		return nil, err
	}

	// Build pivot nodes.
	for pivot, pairs := range rel.Pivots {
		node, err := idx.buildPivotNode(d, rel, pivot, pairs, perSeries)
		if err != nil {
			return nil, err
		}
		idx.pivots = append(idx.pivots, node)
		idx.byPivot[pivot] = node
	}

	// Build global location trees.
	if len(opts.LocationMeasures) > 0 {
		if err := idx.buildLocationTrees(d, rel); err != nil {
			return nil, err
		}
	}

	idx.stats.Pivots = len(idx.pivots)
	idx.stats.SequenceNodes = len(rel.Relationships)
	idx.stats.IndexedTMeasures = len(idx.pairMeasures)
	idx.stats.IndexedDMeasures = len(idx.derivedSet)
	idx.stats.IndexedLMeasures = len(idx.locationSet)
	idx.stats.DerivedPruningOn = !opts.DisableDerivedPruning
	return idx, nil
}

// seriesStats caches per-series variance and squared norm.
type seriesStats struct {
	variance []float64
	sqNorm   []float64
}

func computeSeriesStats(d *timeseries.DataMatrix) (*seriesStats, error) {
	n := d.NumSeries()
	out := &seriesStats{variance: make([]float64, n), sqNorm: make([]float64, n)}
	for _, id := range d.IDs() {
		s, err := d.Series(id)
		if err != nil {
			return nil, err
		}
		v, err := stats.VarianceOf(s)
		if err != nil {
			return nil, err
		}
		sq, err := stats.DotProductOf(s, s)
		if err != nil {
			return nil, err
		}
		out.variance[id] = v
		out.sqNorm[id] = sq
	}
	return out, nil
}

// buildPivotNode computes α per indexed measure for one pivot and inserts
// every assigned sequence pair into the per-measure trees.
func (idx *Index) buildPivotNode(d *timeseries.DataMatrix, rel *symex.Result,
	pivot symex.Pivot, pairs []timeseries.Pair, perSeries *seriesStats) (*pivotNode, error) {

	op, err := rel.PivotMatrix(d, pivot)
	if err != nil {
		return nil, err
	}
	covOp, err := stats.PairMatrixCovariance(op)
	if err != nil {
		return nil, err
	}
	dotOp, err := stats.PairMatrixDotProduct(op)
	if err != nil {
		return nil, err
	}
	sums, err := stats.ColumnSums(op)
	if err != nil {
		return nil, err
	}

	node := &pivotNode{
		pivot:      pivot,
		measures:   make(map[stats.Measure]*pivotMeasure),
		normBounds: make(map[stats.Measure][2]float64),
		pairs:      len(pairs),
	}

	for m := range idx.pairMeasures {
		var alpha [3]float64
		switch m {
		case stats.Covariance:
			alpha = [3]float64{covOp.At(0, 0), covOp.At(0, 1), 0}
		case stats.DotProduct:
			alpha = [3]float64{dotOp.At(0, 0), dotOp.At(0, 1), sums[0]}
		default:
			return nil, fmt.Errorf("%w: %v", ErrMeasureNotIndexed, m)
		}
		node.measures[m] = &pivotMeasure{
			alpha:     alpha,
			alphaNorm: vec3Norm(alpha),
			tree:      btree.New[*sequenceNode](),
		}
	}

	// Normalizer bounds start empty; they are extended as sequence nodes are
	// inserted.
	for m := range idx.derivedSet {
		node.normBounds[m] = [2]float64{math.Inf(1), math.Inf(-1)}
	}

	for _, e := range pairs {
		r, ok := rel.Relationships[e]
		if !ok {
			return nil, fmt.Errorf("scape: pivot %v references unknown pair %v", pivot, e)
		}
		sn := &sequenceNode{
			pair: e,
			beta: [3]float64{r.Transform.A.At(0, 1), r.Transform.A.At(1, 1), r.Transform.B[1]},
		}
		if len(idx.derivedSet) > 0 {
			sn.normalizers = make(map[stats.Measure]float64, len(idx.derivedSet))
			for m := range idx.derivedSet {
				u := separableNormalizer(m, perSeries, e)
				sn.normalizers[m] = u
				bounds := node.normBounds[m]
				if u < bounds[0] {
					bounds[0] = u
				}
				if u > bounds[1] {
					bounds[1] = u
				}
				node.normBounds[m] = bounds
			}
		}
		for _, pm := range node.measures {
			xi := scalarProjection(pm, sn.beta)
			pm.tree.Insert(xi, sn)
			idx.stats.TotalTreeInsertion++
		}
	}
	return node, nil
}

// buildLocationTrees estimates every series' L-measures (through an affine
// relationship when the series appears as the non-common member of one,
// directly otherwise) and inserts them into the global location trees.
func (idx *Index) buildLocationTrees(d *timeseries.DataMatrix, rel *symex.Result) error {
	// Pick, for every series, one relationship in which it is the "other"
	// (non-common) member.
	chosen := make(map[timeseries.SeriesID]*symex.Relationship, d.NumSeries())
	for _, r := range rel.Relationships {
		other := r.Other()
		if _, ok := chosen[other]; !ok {
			chosen[other] = r
		}
	}

	for m := range idx.locationSet {
		idx.location[m] = btree.New[seriesEntry]()
	}

	// Cache the pivot-side L-measures per (pivot, measure) so each pivot
	// matrix is only reduced once.
	type pivotLoc struct {
		values [2]float64
	}
	pivotCache := make(map[symex.Pivot]map[stats.Measure]pivotLoc)

	for _, id := range d.IDs() {
		r := chosen[id]
		for m := range idx.locationSet {
			var value float64
			if r != nil {
				cache, ok := pivotCache[r.Pivot]
				if !ok {
					cache = make(map[stats.Measure]pivotLoc)
					pivotCache[r.Pivot] = cache
				}
				pl, ok := cache[m]
				if !ok {
					op, err := rel.PivotMatrix(d, r.Pivot)
					if err != nil {
						return err
					}
					vals, err := stats.PairMatrixLocation(m, op)
					if err != nil {
						return err
					}
					pl = pivotLoc{values: [2]float64{vals[0], vals[1]}}
					cache[m] = pl
				}
				// L(other) = L(O_p)ᵀ·a2 + b2  (second component of Eq. 5).
				propagated := r.Transform.PropagateLocation(pl.values)
				value = propagated[1]
				idx.stats.LocationEstimated++
			} else {
				s, err := d.Series(id)
				if err != nil {
					return err
				}
				v, err := stats.ComputeLocation(m, s)
				if err != nil {
					return err
				}
				value = v
				idx.stats.LocationComputed++
			}
			idx.location[m].Insert(value, seriesEntry{id: id, value: value})
			idx.stats.TotalTreeInsertion++
		}
	}
	return nil
}

// separableNormalizer computes the per-pair normalizer U_e of a separable
// D-measure from per-series statistics only.
func separableNormalizer(m stats.Measure, perSeries *seriesStats, e timeseries.Pair) float64 {
	switch m {
	case stats.Correlation:
		return math.Sqrt(perSeries.variance[e.U] * perSeries.variance[e.V])
	case stats.Cosine:
		return math.Sqrt(perSeries.sqNorm[e.U] * perSeries.sqNorm[e.V])
	case stats.Dice:
		return (perSeries.sqNorm[e.U] + perSeries.sqNorm[e.V]) / 2
	case stats.HarmonicMean:
		sum := perSeries.sqNorm[e.U] + perSeries.sqNorm[e.V]
		if sum == 0 {
			return 0
		}
		return perSeries.sqNorm[e.U] * perSeries.sqNorm[e.V] / sum
	default:
		return 0
	}
}

func isSeparable(m stats.Measure) bool {
	for _, s := range SeparableDerivedMeasures() {
		if s == m {
			return true
		}
	}
	return false
}

// scalarProjection returns ξ = αᵀβ / ‖α‖ for a sequence node under a given
// pivot measure.  A zero ‖α‖ (degenerate pivot) yields ξ = 0, keeping the
// identity value = ‖α‖·ξ = 0 consistent.
func scalarProjection(pm *pivotMeasure, beta [3]float64) float64 {
	if pm.alphaNorm == 0 {
		return 0
	}
	return vec3Dot(pm.alpha, beta) / pm.alphaNorm
}

func vec3Dot(a, b [3]float64) float64 {
	return a[0]*b[0] + a[1]*b[1] + a[2]*b[2]
}

func vec3Norm(a [3]float64) float64 {
	return math.Sqrt(a[0]*a[0] + a[1]*a[1] + a[2]*a[2])
}
