// Package scape implements the SCAPE (SCAlar ProjEction) index of Section 5
// of the paper: a measure-agnostic index over affine relationships that
// answers measure threshold (MET) and measure range (MER) queries without
// recomputing the measure for every query.
//
// # Structure
//
// For every pivot pair p_q produced by SYMEX+ the index keeps a pivot node
// with, per indexed measure, the vector α_q and its norm ‖α_q‖; the sequence
// pairs assigned to the pivot are stored in sorted containers (B-trees) keyed
// by the scalar projection ξ_qd = α_qᵀβ_qd / ‖α_q‖, where β_qd = (a12, a22,
// b2) is derived purely from the affine relationship (A, b)_e.  Because all
// affine relationships are built with the common series as the first column,
// the measure value of a sequence pair factors exactly as α_qᵀβ_qd = ‖α_q‖·ξ_qd
// (Observation 1 and Table 2):
//
//	covariance:  α = (Σ11(O_p), Σ12(O_p), 0)
//	dot product: α = (Π11(O_p), Π12(O_p), h1(O_p))
//	location:    α = (L1(O_p), L2(O_p), 1)
//
// The scalar projection depends on α and therefore on the measure; the index
// stores one sorted container per (pivot, measure) sharing the sequence-node
// payloads, which keeps the paper's single-index query algorithms intact
// while remaining exactly correct for every measure.  β is computed once per
// relationship and never changes.
//
// D-measures are indexed through their base T-measure: each sequence node
// additionally stores the separable normalizer U_e of every indexed
// D-measure, and each pivot node stores the minimum and maximum normalizer
// among its sequence nodes (U^min_q, U^max_q), which drive the index pruning
// of Section 5.3.
//
// Location (L-) measures apply to single series rather than pairs; the index
// maintains one global B-tree per L-measure keyed by the series' measure
// value estimated through an affine relationship (falling back to a direct
// computation for series that only ever appear as the common member).
package scape

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"affinity/internal/btree"
	"affinity/internal/measure"
	"affinity/internal/par"
	"affinity/internal/stats"
	"affinity/internal/symex"
	"affinity/internal/timeseries"
)

// ErrMeasureNotIndexed is returned when a query references a measure the
// index was not built for (or that SCAPE cannot index, such as a D-measure
// with a non-separable normalizer).
var ErrMeasureNotIndexed = errors.New("scape: measure not indexed")

// ErrBadQuery is returned for malformed query parameters.
var ErrBadQuery = errors.New("scape: bad query")

// Options configures the index build.
//
// For the measure lists, a nil slice selects the default set while an
// explicitly empty (non-nil) slice selects none of that kind; the latter is
// used by experiments that index a single measure class in isolation.
type Options struct {
	// PairMeasures lists the T-measures to index.  D-measures are answered
	// through their base T-measure and do not need to be listed.  Nil selects
	// all T-measures (covariance and dot product).
	PairMeasures []stats.Measure
	// DerivedMeasures lists the D-measures for which normalizers and pruning
	// bounds should be maintained.  Nil selects every D-measure with a
	// separable normalizer (correlation, cosine, Dice, harmonic mean).
	DerivedMeasures []stats.Measure
	// LocationMeasures lists the L-measures to index over individual series.
	// Nil selects mean, median and mode.
	LocationMeasures []stats.Measure
	// DisableDerivedPruning turns off the U^min/U^max pruning of Section 5.3
	// (every candidate's exact derived value is evaluated instead).  Used by
	// the ablation benchmark; queries return identical results either way.
	DisableDerivedPruning bool
	// Parallelism is the number of goroutines used to shard threshold/range
	// scans by pivot at query time, and — unless BuildParallelism overrides
	// it — to build the pivot nodes (one B-tree set per pivot).  Zero or one
	// runs sequentially.  Pivot nodes are kept in a deterministic
	// (Common, Cluster) order and per-pivot partial results are merged in
	// that order, so query results are byte-identical at any level.
	Parallelism int
	// BuildParallelism, when positive, overrides Parallelism for the build
	// only (the streaming engine rebuilds the index with its Advance-time
	// worker count while queries keep the engine-wide one).
	BuildParallelism int
}

// buildParallelism returns the worker count for index construction.
func (o Options) buildParallelism() int {
	if o.BuildParallelism > 0 {
		return o.BuildParallelism
	}
	return o.Parallelism
}

func (o Options) withDefaults() Options {
	if o.PairMeasures == nil {
		o.PairMeasures = stats.TMeasures()
	}
	if o.DerivedMeasures == nil {
		o.DerivedMeasures = SeparableDerivedMeasures()
	}
	if o.LocationMeasures == nil {
		o.LocationMeasures = stats.LMeasures()
	}
	return o
}

// SeparableDerivedMeasures returns the D-measures the index can serve: those
// whose spec declares a separable parameter with a monotone, invertible value
// transform (Section 5.1, "Indexing D-Measures", generalized to decreasing
// transforms).  The generalized Jaccard coefficient declares itself
// non-indexable: its transform has a pole inside the reachable base range.
func SeparableDerivedMeasures() []stats.Measure {
	return measure.IndexableDerived()
}

// sequenceNode is the per-relationship payload shared by all per-measure
// trees of a pivot node.  It holds only window-independent state (the pair
// and its affine β), so incremental updates can carry nodes of unchanged
// relationships across epochs untouched; the separable D-measure parameters
// U_e are derived at query time from the index's per-series statistics.
type sequenceNode struct {
	pair timeseries.Pair
	beta [3]float64
}

// pivotMeasure is the per-(pivot, measure) state: α, ‖α‖ and the sorted
// container of sequence nodes keyed by scalar projection.
type pivotMeasure struct {
	alpha     [3]float64
	alphaNorm float64
	tree      *btree.Tree[*sequenceNode]
}

// pivotNode groups everything the index stores for one pivot pair.
type pivotNode struct {
	pivot    symex.Pivot
	measures map[stats.Measure]*pivotMeasure
	// seq is the pivot's sequence store: the canonical container of sequence
	// nodes keyed by pair code (a total order over canonical pairs).  It holds
	// the window-independent payloads the per-measure ξ-trees are derived
	// from, and is the unit of cross-epoch sharing: Update clones it
	// copy-on-write and applies only the stale pairs' deletions/insertions.
	seq *btree.Tree[*sequenceNode]
	// paramBounds[measure] = (U^min_q, U^max_q) across the pivot's sequence
	// nodes, for every indexed D-measure; they drive the Section 5.3 pruning.
	paramBounds map[stats.Measure][2]float64
	pairs       int
	// insertions counts the B-tree entries created while building this
	// node; nodes are built in parallel, so the counter is per-node and summed
	// into BuildStats afterwards.
	insertions int
	// scratchHit records whether the node's build scratch came from the pool.
	scratchHit bool
}

// seriesEntry is the payload of the global location trees.
type seriesEntry struct {
	id    timeseries.SeriesID
	value float64
}

// BuildStats summarizes the index contents.
type BuildStats struct {
	Pivots             int
	SequenceNodes      int
	IndexedTMeasures   int
	IndexedDMeasures   int
	IndexedLMeasures   int
	LocationEstimated  int // series whose L-value came from an affine relationship
	LocationComputed   int // series whose L-value was computed directly (fallback)
	DerivedPruningOn   bool
	TotalTreeInsertion int
	// ScratchGets/ScratchHits count per-pivot scratch buffer requests and how
	// many were satisfied from the shared pool (vs freshly allocated).
	ScratchGets int
	ScratchHits int
}

// Index is the SCAPE index.
type Index struct {
	opts    Options
	pivots  []*pivotNode
	byPivot map[symex.Pivot]*pivotNode
	// location[measure] holds the global per-series tree for an L-measure.
	location map[stats.Measure]*btree.Tree[seriesEntry]
	// pairMeasures / derivedSet for quick membership checks.
	pairMeasures map[stats.Measure]bool
	derivedSet   map[stats.Measure]bool
	locationSet  map[stats.Measure]bool
	numSamples   int
	numSeries    int
	// perSeries holds the window's per-series variance and squared norm; the
	// separable D-measure parameters U_e are computed from it at query time.
	perSeries *seriesStats
	stats     BuildStats
}

// Stats returns build statistics.
func (idx *Index) Stats() BuildStats { return idx.stats }

// NumPivots returns the number of pivot nodes.
func (idx *Index) NumPivots() int { return len(idx.pivots) }

// Build constructs a SCAPE index from the affine relationships produced by
// SYMEX/SYMEX+ over the given data matrix.
func Build(d *timeseries.DataMatrix, rel *symex.Result, opts Options) (*Index, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if rel == nil || len(rel.Relationships) == 0 {
		return nil, fmt.Errorf("scape: no affine relationships to index")
	}
	opts = opts.withDefaults()
	for _, m := range opts.PairMeasures {
		sp, ok := measure.Find(m)
		if !ok || sp.Derived() || !sp.Pairwise() {
			return nil, fmt.Errorf("%w: %v is not a T-measure", ErrBadQuery, m)
		}
	}
	for _, m := range opts.DerivedMeasures {
		sp, ok := measure.Find(m)
		if !ok || !sp.Derived() {
			return nil, fmt.Errorf("%w: %v is not a D-measure", ErrBadQuery, m)
		}
		if !sp.Indexable {
			return nil, fmt.Errorf("%w: %v has a non-separable normalizer", ErrMeasureNotIndexed, m)
		}
	}
	for _, m := range opts.LocationMeasures {
		sp, ok := measure.Find(m)
		if !ok || !sp.Location() {
			return nil, fmt.Errorf("%w: %v is not an L-measure", ErrBadQuery, m)
		}
	}

	idx := &Index{
		opts:         opts,
		byPivot:      make(map[symex.Pivot]*pivotNode),
		location:     make(map[stats.Measure]*btree.Tree[seriesEntry]),
		pairMeasures: make(map[stats.Measure]bool),
		derivedSet:   make(map[stats.Measure]bool),
		locationSet:  make(map[stats.Measure]bool),
		numSamples:   d.NumSamples(),
		numSeries:    d.NumSeries(),
	}
	for _, m := range opts.PairMeasures {
		idx.pairMeasures[m] = true
	}
	for _, m := range opts.DerivedMeasures {
		idx.derivedSet[m] = true
		// A derived measure needs its base T-measure to be indexed.
		idx.pairMeasures[m.Base()] = true
	}
	for _, m := range opts.LocationMeasures {
		idx.locationSet[m] = true
	}

	// Per-series quantities for separable normalizers (variance and squared
	// norm), computed once in O(n·m).
	perSeries, err := computeSeriesStats(d, opts.buildParallelism())
	if err != nil {
		return nil, err
	}
	idx.perSeries = perSeries

	// Build pivot nodes, one per pivot, in a deterministic (Common, Cluster)
	// order.  The nodes are independent — each owns its B-trees — so they are
	// built in parallel and gathered in index order; queries later scan
	// idx.pivots in this same order, which is what makes result ordering
	// independent of both map iteration and parallelism.
	pivotOrder := rel.SortedPivots()
	centers, err := computeCenterMoments(rel)
	if err != nil {
		return nil, err
	}
	nodes, err := par.Gather(len(pivotOrder), opts.buildParallelism(), func(i int) (*pivotNode, error) {
		pivot := pivotOrder[i]
		return idx.buildPivotNode(d, rel, pivot, rel.Pivots[pivot], perSeries, centers)
	})
	if err != nil {
		return nil, err
	}
	treeInsertions := 0
	for _, node := range nodes {
		idx.pivots = append(idx.pivots, node)
		idx.byPivot[node.pivot] = node
		treeInsertions += node.insertions
		idx.stats.ScratchGets++
		if node.scratchHit {
			idx.stats.ScratchHits++
		}
	}
	idx.stats.TotalTreeInsertion += treeInsertions

	// Build global location trees.
	if len(opts.LocationMeasures) > 0 {
		if err := idx.buildLocationTrees(d, rel); err != nil {
			return nil, err
		}
	}

	idx.stats.Pivots = len(idx.pivots)
	idx.stats.SequenceNodes = len(rel.Relationships)
	idx.stats.IndexedTMeasures = len(idx.pairMeasures)
	idx.stats.IndexedDMeasures = len(idx.derivedSet)
	idx.stats.IndexedLMeasures = len(idx.locationSet)
	idx.stats.DerivedPruningOn = !opts.DisableDerivedPruning
	return idx, nil
}

// seriesStats caches per-series variance, squared norm and sum.
type seriesStats struct {
	variance []float64
	sqNorm   []float64
	sum      []float64
}

// stat returns the SeriesStat bundle of one series for spec parameters.
func (s *seriesStats) stat(id timeseries.SeriesID) measure.SeriesStat {
	return measure.SeriesStat{Variance: s.variance[id], SqNorm: s.sqNorm[id]}
}

func computeSeriesStats(d *timeseries.DataMatrix, parallelism int) (*seriesStats, error) {
	n := d.NumSeries()
	out := &seriesStats{
		variance: make([]float64, n),
		sqNorm:   make([]float64, n),
		sum:      make([]float64, n),
	}
	ids := d.IDs()
	err := par.Do(len(ids), parallelism, func(i int) error {
		id := ids[i]
		s, err := d.Series(id)
		if err != nil {
			return err
		}
		v, err := stats.VarianceOf(s)
		if err != nil {
			return err
		}
		sq, err := stats.DotProductOf(s, s)
		if err != nil {
			return err
		}
		out.variance[id] = v
		out.sqNorm[id] = sq
		out.sum[id] = stats.SumOf(s)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// centerMoments caches the self-moments of one cluster center: every pivot of
// the same cluster shares them, so they are reduced once per epoch instead of
// once per pivot.  The values come from the same slice primitives
// finishPivotNode used to call per pivot, so they are bit-identical.
type centerMoments struct {
	variance float64 // VarianceOf(center)
	sqNorm   float64 // DotProductOf(center, center)
	sum      float64 // SumOf(center)
}

// computeCenterMoments reduces each cluster center once.
func computeCenterMoments(rel *symex.Result) ([]centerMoments, error) {
	out := make([]centerMoments, len(rel.Clustering.Centers))
	for l, center := range rel.Clustering.Centers {
		v, err := stats.VarianceOf(center)
		if err != nil {
			return nil, err
		}
		sq, err := stats.DotProductOf(center, center)
		if err != nil {
			return nil, err
		}
		out[l] = centerMoments{variance: v, sqNorm: sq, sum: stats.SumOf(center)}
	}
	return out, nil
}

// pairCode maps a canonical pair to a float64 key that is strictly monotone
// in (U, V) lexicographic order, so a sequence store's scan order is the
// canonical pair order.  IDs are dense [0, numSeries), so U·numSeries+V stays
// far below 2^53 and the encoding is exact.
func pairCode(e timeseries.Pair, numSeries int) float64 {
	return float64(int(e.U)*numSeries + int(e.V))
}

// newSequenceNode builds the window-independent payload of one relationship.
func newSequenceNode(e timeseries.Pair, r *symex.Relationship) *sequenceNode {
	return &sequenceNode{
		pair: e,
		beta: [3]float64{r.Transform.A.At(0, 1), r.Transform.A.At(1, 1), r.Transform.B[1]},
	}
}

// buildPivotNode constructs one pivot node from scratch: the sequence store
// in canonical pair order, then the window-dependent state on top of it.
func (idx *Index) buildPivotNode(d *timeseries.DataMatrix, rel *symex.Result,
	pivot symex.Pivot, pairs []timeseries.Pair, perSeries *seriesStats, centers []centerMoments) (*pivotNode, error) {

	seq, err := idx.makeSeqStore(rel, pivot, pairs)
	if err != nil {
		return nil, err
	}
	return idx.finishPivotNode(d, rel, pivot, seq, perSeries, centers)
}

// makeSeqStore bulk-loads a pivot's sequence store with one node per assigned
// pair, in canonical pair order.
func (idx *Index) makeSeqStore(rel *symex.Result, pivot symex.Pivot, pairs []timeseries.Pair) (*btree.Tree[*sequenceNode], error) {
	sorted := append(make([]timeseries.Pair, 0, len(pairs)), pairs...)
	sort.Slice(sorted, func(i, j int) bool { return pairLess(sorted[i], sorted[j]) })
	codes := make([]float64, len(sorted))
	nodes := make([]*sequenceNode, len(sorted))
	for i, e := range sorted {
		r, ok := rel.Relationships[e]
		if !ok {
			return nil, fmt.Errorf("scape: pivot %v references unknown pair %v", pivot, e)
		}
		nodes[i] = newSequenceNode(e, r)
		codes[i] = pairCode(e, idx.numSeries)
	}
	return btree.FromSorted(codes, nodes), nil
}

// xiEntry pairs a sequence node with its scalar projection while the
// per-measure tree contents are being sorted.
type xiEntry struct {
	xi float64
	sn *sequenceNode
}

// pivotScratch holds the reusable per-pivot build buffers.  The buffers grow
// to the largest pivot they have served and are recycled through a pool
// across pivots and epochs, keeping the per-epoch allocation count
// independent of the number of relationships.
type pivotScratch struct {
	nodes   []*sequenceNode
	entries []xiEntry
	keys    []float64
	vals    []*sequenceNode
}

var pivotScratchPool sync.Pool

// getScratch returns a scratch buffer and whether it came from the pool.
func getScratch() (*pivotScratch, bool) {
	if v := pivotScratchPool.Get(); v != nil {
		return v.(*pivotScratch), true
	}
	return &pivotScratch{}, false
}

func putScratch(sc *pivotScratch) { pivotScratchPool.Put(sc) }

// finishPivotNode derives all window-dependent per-pivot state — α per
// measure, the D-measure parameter bounds, and the per-measure ξ-trees — from
// a pivot's sequence store.  It is the single code path shared by Build and
// Update, which is what makes incrementally maintained indexes byte-identical
// to freshly built ones: both sides feed the same sequence-node payloads, in
// the same canonical pair order, through the same floating-point operations.
func (idx *Index) finishPivotNode(d *timeseries.DataMatrix, rel *symex.Result,
	pivot symex.Pivot, seq *btree.Tree[*sequenceNode], perSeries *seriesStats, centers []centerMoments) (*pivotNode, error) {

	// The pivot's second-moment terms are reduced straight off the two column
	// slices of O_p = [s_common, r_cluster] — bit-identical to reducing a
	// materialized pair matrix (stats.PairMatrix* delegate to these same slice
	// primitives), but without the two column copies and the row-major matrix
	// allocation per pivot, which dominated the build profile.  The self-moments
	// of both columns are memoized (per series in perSeries, per cluster in
	// centers), leaving only the two cross-column reductions per pivot.
	common, center, err := rel.PivotColumns(d, pivot)
	if err != nil {
		return nil, err
	}
	cov, err := stats.CovarianceOf(common, center)
	if err != nil {
		return nil, err
	}
	d01, err := stats.DotProductOf(common, center)
	if err != nil {
		return nil, err
	}
	cm := centers[pivot.Cluster]
	terms := measure.PivotTerms{
		Cov:        [3]float64{perSeries.variance[pivot.Common], cov, cm.variance},
		Dot:        [3]float64{perSeries.sqNorm[pivot.Common], d01, cm.sqNorm},
		ColSums:    [2]float64{perSeries.sum[pivot.Common], cm.sum},
		NumSamples: idx.numSamples,
	}

	node := &pivotNode{
		pivot:       pivot,
		seq:         seq,
		measures:    make(map[stats.Measure]*pivotMeasure),
		paramBounds: make(map[stats.Measure][2]float64),
		pairs:       seq.Len(),
	}

	// α per indexed T-measure is the first row of the measure's augmented
	// second-moment matrix (Observation 1 / Table 2 fall out of the algebra).
	for m := range idx.pairMeasures {
		alpha := measure.Lookup(m).Moment(terms).Alpha()
		node.measures[m] = &pivotMeasure{
			alpha:     alpha,
			alphaNorm: vec3Norm(alpha),
		}
	}

	sc, hit := getScratch()
	node.scratchHit = hit
	defer putScratch(sc)

	// Snapshot the store in canonical pair order once; every derived
	// structure below walks this slice.
	nodes := sc.nodes[:0]
	seq.Ascend(func(_ float64, sn *sequenceNode) bool {
		nodes = append(nodes, sn)
		return true
	})
	sc.nodes = nodes

	// Parameter bounds (U^min_q, U^max_q) per indexed D-measure over the
	// pivot's pairs; the parameters depend on the window's per-series
	// statistics and are therefore recomputed every epoch.
	for m := range idx.derivedSet {
		param := measure.Lookup(m).Param
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, sn := range nodes {
			u := param(perSeries.stat(sn.pair.U), perSeries.stat(sn.pair.V))
			if u < lo {
				lo = u
			}
			if u > hi {
				hi = u
			}
		}
		node.paramBounds[m] = [2]float64{lo, hi}
	}

	// ξ-trees: project every node, stable-sort (preserving canonical pair
	// order among equal projections, matching sequential insertion), and
	// bulk-load.  This replaces per-entry random inserts with O(k) tree
	// construction from pooled buffers.
	for _, pm := range node.measures {
		entries := sc.entries[:0]
		for _, sn := range nodes {
			entries = append(entries, xiEntry{xi: scalarProjection(pm, sn.beta), sn: sn})
		}
		sort.SliceStable(entries, func(i, j int) bool { return entries[i].xi < entries[j].xi })
		keys := sc.keys[:0]
		vals := sc.vals[:0]
		for _, e := range entries {
			keys = append(keys, e.xi)
			vals = append(vals, e.sn)
		}
		pm.tree = btree.FromSorted(keys, vals)
		node.insertions += len(entries)
		sc.entries, sc.keys, sc.vals = entries, keys, vals
	}
	return node, nil
}

// buildLocationTrees estimates every series' L-measures (through an affine
// relationship when the series appears as the non-common member of one,
// directly otherwise) and inserts them into the global location trees.
func (idx *Index) buildLocationTrees(d *timeseries.DataMatrix, rel *symex.Result) error {
	// Pick, for every series, one relationship in which it is the "other"
	// (non-common) member.  Relationships live in a map, so the candidate with
	// the smallest canonical pair is chosen to keep the estimate (and thus the
	// tree contents) independent of map iteration order.
	chosen := make(map[timeseries.SeriesID]*symex.Relationship, d.NumSeries())
	for _, r := range rel.Relationships {
		other := r.Other()
		cur, ok := chosen[other]
		if !ok || pairLess(r.Pair, cur.Pair) {
			chosen[other] = r
		}
	}

	measures := sortedMeasures(idx.locationSet)
	for _, m := range measures {
		idx.location[m] = btree.New[seriesEntry]()
	}

	// Reduce each distinct pivot matrix once per measure, in parallel over
	// pivots (the O(|pivots|·m) part of the build).
	var pivotOrder []symex.Pivot
	seen := make(map[symex.Pivot]bool)
	ids := d.IDs()
	for _, id := range ids {
		if r := chosen[id]; r != nil && !seen[r.Pivot] {
			seen[r.Pivot] = true
			pivotOrder = append(pivotOrder, r.Pivot)
		}
	}
	// Cluster-center locations are shared by every pivot of the same cluster;
	// compute each distinct center once and let the per-pivot reduction below
	// read the memo (bit-identical: the same ComputeLocation call on the same
	// center slice).
	centerLoc := make(map[int]map[stats.Measure]float64)
	for _, p := range pivotOrder {
		if _, ok := centerLoc[p.Cluster]; ok {
			continue
		}
		_, center, err := rel.PivotColumns(d, p)
		if err != nil {
			return err
		}
		locs := make(map[stats.Measure]float64, len(measures))
		for _, m := range measures {
			v, err := stats.ComputeLocation(m, center)
			if err != nil {
				return err
			}
			locs[m] = v
		}
		centerLoc[p.Cluster] = locs
	}
	type pivotLoc struct {
		values map[stats.Measure][2]float64
	}
	pivotLocs, err := par.Gather(len(pivotOrder), idx.opts.buildParallelism(), func(i int) (pivotLoc, error) {
		// L-measures straight off the common column slice of O_p
		// (ComputeLocation never mutates its input; the median path copies
		// before sorting).
		common, _, err := rel.PivotColumns(d, pivotOrder[i])
		if err != nil {
			return pivotLoc{}, err
		}
		pl := pivotLoc{values: make(map[stats.Measure][2]float64, len(measures))}
		for _, m := range measures {
			lc, err := stats.ComputeLocation(m, common)
			if err != nil {
				return pivotLoc{}, err
			}
			pl.values[m] = [2]float64{lc, centerLoc[pivotOrder[i].Cluster][m]}
		}
		return pl, nil
	})
	if err != nil {
		return err
	}
	locByPivot := make(map[symex.Pivot]pivotLoc, len(pivotOrder))
	for i, p := range pivotOrder {
		locByPivot[p] = pivotLocs[i]
	}

	// Per-series values, sharded by series; the direct (fallback) computation
	// dominates here for series that only appear as the common member.
	values := make([]map[stats.Measure]float64, len(ids))
	estimated := 0
	err = par.Do(len(ids), idx.opts.buildParallelism(), func(i int) error {
		id := ids[i]
		r := chosen[id]
		vals := make(map[stats.Measure]float64, len(measures))
		for _, m := range measures {
			if r != nil {
				// L(other) = L(O_p)ᵀ·a2 + b2  (second component of Eq. 5).
				propagated := r.Transform.PropagateLocation(locByPivot[r.Pivot].values[m])
				vals[m] = propagated[1]
				continue
			}
			s, err := d.Series(id)
			if err != nil {
				return err
			}
			v, err := stats.ComputeLocation(m, s)
			if err != nil {
				return err
			}
			vals[m] = v
		}
		values[i] = vals
		return nil
	})
	if err != nil {
		return err
	}

	// Sequential inserts in (series, measure) order: ties inside a tree keep
	// insertion order, so this fixes the scan order deterministically.
	for i, id := range ids {
		if chosen[id] != nil {
			estimated++
		}
		for _, m := range measures {
			value := values[i][m]
			idx.location[m].Insert(value, seriesEntry{id: id, value: value})
			idx.stats.TotalTreeInsertion++
		}
	}
	idx.stats.LocationEstimated = estimated * len(measures)
	idx.stats.LocationComputed = (len(ids) - estimated) * len(measures)
	return nil
}

// pairLess orders canonical pairs lexicographically.
func pairLess(a, b timeseries.Pair) bool {
	if a.U != b.U {
		return a.U < b.U
	}
	return a.V < b.V
}

// sortedMeasures returns the keys of a measure set in ascending order.
func sortedMeasures(set map[stats.Measure]bool) []stats.Measure {
	out := make([]stats.Measure, 0, len(set))
	for m := range set {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// scalarProjection returns ξ = αᵀβ / ‖α‖ for a sequence node under a given
// pivot measure.  A zero ‖α‖ (degenerate pivot) yields ξ = 0, keeping the
// identity value = ‖α‖·ξ = 0 consistent.
func scalarProjection(pm *pivotMeasure, beta [3]float64) float64 {
	if pm.alphaNorm == 0 {
		return 0
	}
	return vec3Dot(pm.alpha, beta) / pm.alphaNorm
}

func vec3Dot(a, b [3]float64) float64 {
	return a[0]*b[0] + a[1]*b[1] + a[2]*b[2]
}

func vec3Norm(a [3]float64) float64 {
	return math.Sqrt(a[0]*a[0] + a[1]*a[1] + a[2]*a[2])
}
