package scape

import (
	"math"
	"testing"

	"affinity/internal/interval"
	"affinity/internal/measure"
)

// TestIntervalWindowPlateauEnds pins the clamp-plateau geometry of bounded
// interval queries: a closed endpoint sitting exactly at the value a clamped
// transform plateaus to (distance 0, correlation ±1) is satisfied by
// arbitrarily large |T|, so the matching end of the ξ window must be
// unbounded — otherwise an index built from stale (drift-bounded) transforms
// whose propagated T overshoots the node's parameter interval would silently
// drop plateau entries that the unpruned scan and the affine method include.
func TestIntervalWindowPlateauEnds(t *testing.T) {
	db := derivedBounds{
		pm:       &pivotMeasure{alphaNorm: 2},
		canPrune: true,
		uMin:     4,
		uMax:     9,
	}
	const m = 16
	window := func(sp *measure.Spec, lo, hi float64) xiWindow {
		return db.window(sp, interval.Between(lo, hi), m)
	}

	// Euclidean [0, x]: the lo bound is the decreasing transform's high-T
	// plateau, so the high-T end must be +Inf while the low-T end stays the
	// finite inversion of x.
	eu := measure.Lookup(measure.EuclideanDistance)
	w := window(eu, 0, 1.5)
	if math.IsInf(w.scanLo, 0) || math.IsInf(w.defLo, 0) {
		t.Fatalf("euclidean [0,1.5]: finite hi-bound end expected, got scanLo=%v defLo=%v", w.scanLo, w.defLo)
	}
	if !math.IsInf(w.scanHi, 1) || !math.IsInf(w.defHi, 1) {
		t.Fatalf("euclidean [0,1.5]: plateau end must be +Inf, got scanHi=%v defHi=%v", w.scanHi, w.defHi)
	}
	// Interior range: both ends finite.
	w = window(eu, 0.25, 1.5)
	if math.IsInf(w.scanHi, 0) || math.IsInf(w.defHi, 0) {
		t.Fatalf("euclidean interior range: scanHi=%v defHi=%v should be finite", w.scanHi, w.defHi)
	}

	// Correlation [x, 1]: the hi bound is the increasing transform's high-T
	// plateau (clamp at 1).
	corr := measure.Lookup(measure.Correlation)
	w = window(corr, 0.5, 1)
	if math.IsInf(w.scanLo, 0) || math.IsInf(w.defLo, 0) {
		t.Fatalf("correlation [0.5,1]: scanLo=%v defLo=%v should be finite", w.scanLo, w.defLo)
	}
	if !math.IsInf(w.scanHi, 1) || !math.IsInf(w.defHi, 1) {
		t.Fatalf("correlation [0.5,1]: plateau end must be +Inf, got scanHi=%v defHi=%v", w.scanHi, w.defHi)
	}
	// Correlation [-1, x]: the lo bound is the low-T plateau.
	w = window(corr, -1, 0.5)
	if !math.IsInf(w.scanLo, -1) || !math.IsInf(w.defLo, -1) {
		t.Fatalf("correlation [-1,0.5]: plateau end must be -Inf, got scanLo=%v defLo=%v", w.scanLo, w.defLo)
	}
	// An OPEN endpoint at the plateau value excludes the plateau itself, so
	// the window must stay finite (old MET "value > extreme" semantics).
	w = db.window(corr, interval.New(interval.Open(-1), interval.Closed(0.5)), m)
	if math.IsInf(w.scanLo, 0) {
		t.Fatalf("correlation (-1,0.5]: open plateau endpoint must invert finitely, got scanLo=%v", w.scanLo)
	}

	// Unbounded ratio transforms (cosine is not declared Bounded) keep
	// finite inversions at any probe.
	cos := measure.Lookup(measure.Cosine)
	w = window(cos, -1, 1)
	if math.IsInf(w.scanLo, 0) || math.IsInf(w.scanHi, 0) {
		t.Fatalf("cosine [-1,1]: bounds should stay finite, got %v..%v", w.scanLo, w.scanHi)
	}
}

// TestRangePlateauScanIncludesOvershoot builds a node whose stored projection
// implies a propagated T beyond the parameter interval (the stale-transform
// regime) and checks the pruned range scan keeps the plateau entry.
func TestRangePlateauScanIncludesOvershoot(t *testing.T) {
	d, rel := testDataset(t, 9, 12, 60)
	idx, err := Build(d, rel, Options{})
	if err != nil {
		t.Fatal(err)
	}
	unpruned, err := Build(d, rel, Options{DisableDerivedPruning: true})
	if err != nil {
		t.Fatal(err)
	}
	// Ranges anchored at the plateau values of the clamped transforms.
	cases := []struct {
		m      measure.Measure
		lo, hi float64
	}{
		{measure.EuclideanDistance, 0, 2},
		{measure.MeanSquaredDifference, 0, 1},
		{measure.AngularDistance, 0, 0.4},
		{measure.Correlation, 0.8, 1},
		{measure.Correlation, -1, -0.2},
	}
	for _, tc := range cases {
		a, err := idx.PairInterval(tc.m, interval.Between(tc.lo, tc.hi))
		if err != nil {
			t.Fatal(err)
		}
		b, err := unpruned.PairInterval(tc.m, interval.Between(tc.lo, tc.hi))
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("%v [%v,%v]: pruned %d vs unpruned %d", tc.m, tc.lo, tc.hi, len(a), len(b))
		}
		sa, sb := pairSet(a), pairSet(b)
		for e := range sb {
			if !sa[e] {
				t.Fatalf("%v [%v,%v]: pair %v dropped by pruning", tc.m, tc.lo, tc.hi, e)
			}
		}
	}
}
