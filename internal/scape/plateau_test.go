package scape

import (
	"math"
	"testing"

	"affinity/internal/measure"
)

// TestRangeXiBoundsPlateauEnds pins the clamp-plateau geometry of range
// queries: a range bound sitting exactly at the value a clamped transform
// plateaus to (distance 0, correlation ±1) is satisfied by arbitrarily large
// |T|, so the matching end of the ξ window must be unbounded — otherwise an
// index built from stale (drift-bounded) transforms whose propagated T
// overshoots the node's parameter interval would silently drop plateau
// entries that the unpruned scan and the affine method include.
func TestRangeXiBoundsPlateauEnds(t *testing.T) {
	db := derivedBounds{
		pm:       &pivotMeasure{alphaNorm: 2},
		canPrune: true,
		uMin:     4,
		uMax:     9,
	}
	const m = 16

	// Euclidean [0, x]: the lo bound is the decreasing transform's high-T
	// plateau, so the high-T end must be +Inf while the low-T end stays the
	// finite inversion of x.
	eu := measure.Lookup(measure.EuclideanDistance)
	fromLo, fromHi, toLo, toHi := db.rangeXiBounds(eu, 0, 1.5, m)
	if math.IsInf(fromLo, 0) || math.IsInf(fromHi, 0) {
		t.Fatalf("euclidean [0,1.5]: finite hi-bound end expected, got from=(%v,%v)", fromLo, fromHi)
	}
	if !math.IsInf(toLo, 1) || !math.IsInf(toHi, 1) {
		t.Fatalf("euclidean [0,1.5]: plateau end must be +Inf, got to=(%v,%v)", toLo, toHi)
	}
	// Interior range: both ends finite.
	_, _, toLo, toHi = db.rangeXiBounds(eu, 0.25, 1.5, m)
	if math.IsInf(toLo, 0) || math.IsInf(toHi, 0) {
		t.Fatalf("euclidean interior range: to=(%v,%v) should be finite", toLo, toHi)
	}

	// Correlation [x, 1]: the hi bound is the increasing transform's high-T
	// plateau (clamp at 1).
	corr := measure.Lookup(measure.Correlation)
	fromLo, fromHi, toLo, toHi = db.rangeXiBounds(corr, 0.5, 1, m)
	if math.IsInf(fromLo, 0) || math.IsInf(fromHi, 0) {
		t.Fatalf("correlation [0.5,1]: from=(%v,%v) should be finite", fromLo, fromHi)
	}
	if !math.IsInf(toLo, 1) || !math.IsInf(toHi, 1) {
		t.Fatalf("correlation [0.5,1]: plateau end must be +Inf, got to=(%v,%v)", toLo, toHi)
	}
	// Correlation [-1, x]: the lo bound is the low-T plateau.
	fromLo, fromHi, _, _ = db.rangeXiBounds(corr, -1, 0.5, m)
	if !math.IsInf(fromLo, -1) || !math.IsInf(fromHi, -1) {
		t.Fatalf("correlation [-1,0.5]: plateau end must be -Inf, got from=(%v,%v)", fromLo, fromHi)
	}

	// Unbounded ratio transforms (cosine is not declared Bounded) keep
	// finite inversions at any probe.
	cos := measure.Lookup(measure.Cosine)
	fromLo, _, _, toHi = db.rangeXiBounds(cos, -1, 1, m)
	if math.IsInf(fromLo, 0) || math.IsInf(toHi, 0) {
		t.Fatalf("cosine [-1,1]: bounds should stay finite, got %v..%v", fromLo, toHi)
	}
}

// TestRangePlateauScanIncludesOvershoot builds a node whose stored projection
// implies a propagated T beyond the parameter interval (the stale-transform
// regime) and checks the pruned range scan keeps the plateau entry.
func TestRangePlateauScanIncludesOvershoot(t *testing.T) {
	d, rel := testDataset(t, 9, 12, 60)
	idx, err := Build(d, rel, Options{})
	if err != nil {
		t.Fatal(err)
	}
	unpruned, err := Build(d, rel, Options{DisableDerivedPruning: true})
	if err != nil {
		t.Fatal(err)
	}
	// Ranges anchored at the plateau values of the clamped transforms.
	cases := []struct {
		m      measure.Measure
		lo, hi float64
	}{
		{measure.EuclideanDistance, 0, 2},
		{measure.MeanSquaredDifference, 0, 1},
		{measure.AngularDistance, 0, 0.4},
		{measure.Correlation, 0.8, 1},
		{measure.Correlation, -1, -0.2},
	}
	for _, tc := range cases {
		a, err := idx.PairRange(tc.m, tc.lo, tc.hi)
		if err != nil {
			t.Fatal(err)
		}
		b, err := unpruned.PairRange(tc.m, tc.lo, tc.hi)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("%v [%v,%v]: pruned %d vs unpruned %d", tc.m, tc.lo, tc.hi, len(a), len(b))
		}
		sa, sb := pairSet(a), pairSet(b)
		for e := range sb {
			if !sa[e] {
				t.Fatalf("%v [%v,%v]: pair %v dropped by pruning", tc.m, tc.lo, tc.hi, e)
			}
		}
	}
}
