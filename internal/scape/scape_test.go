package scape

import (
	"errors"
	"math"
	"math/rand"
	"sort"
	"testing"

	"affinity/internal/cluster"
	"affinity/internal/interval"
	"affinity/internal/measure"
	"affinity/internal/stats"
	"affinity/internal/symex"
	"affinity/internal/timeseries"
)

// testDataset builds a correlated dataset plus its SYMEX+ relationships.
func testDataset(t testing.TB, seed int64, n, m int) (*timeseries.DataMatrix, *symex.Result) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	const groups = 3
	bases := make([][]float64, groups)
	for g := range bases {
		b := make([]float64, m)
		for i := range b {
			b[i] = math.Sin(float64(i)*0.03*float64(g+1)) + 0.4*math.Cos(float64(i)*0.011*float64(g+2))
		}
		bases[g] = b
	}
	series := make([][]float64, n)
	for s := range series {
		g := s % groups
		scale := 0.5 + rng.Float64()*2
		offset := rng.NormFloat64() * 0.5
		col := make([]float64, m)
		for i := range col {
			col[i] = scale*bases[g][i] + offset + rng.NormFloat64()*0.02
		}
		series[s] = col
	}
	d, err := timeseries.NewDataMatrix(series)
	if err != nil {
		t.Fatal(err)
	}
	rel, err := symex.Compute(d, symex.Options{
		Cluster:            cluster.Config{K: groups, MaxIterations: 10, MinChanges: 0, Seed: 1},
		CachePseudoInverse: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d, rel
}

// affineEstimates computes, for every pair, the measure value as represented
// by the affine relationships (the W_A estimate), which is what the SCAPE
// index stores.  Pairs with an undefined derived value are omitted.
func affineEstimates(t testing.TB, d *timeseries.DataMatrix, rel *symex.Result, m stats.Measure) map[timeseries.Pair]float64 {
	t.Helper()
	out := make(map[timeseries.Pair]float64, len(rel.Relationships))
	for e, r := range rel.Relationships {
		op, err := rel.PivotMatrix(d, r.Pivot)
		if err != nil {
			t.Fatal(err)
		}
		baseSpec := measure.Lookup(m.Base())
		terms, err := baseSpec.EvalTerms(op.Col(0), op.Col(1))
		if err != nil {
			t.Fatal(err)
		}
		base := r.Transform.PropagateMoment(baseSpec.Moment(terms))
		sp := measure.Lookup(m)
		if sp.Derived() {
			su, _ := d.Series(e.U)
			sv, _ := d.Series(e.V)
			u, err := stats.NormalizerOf(m, su, sv)
			if err != nil {
				t.Fatal(err)
			}
			v, err := sp.Value(base, u, d.NumSamples())
			if err != nil {
				continue // undefined for this pair (zero normalizer)
			}
			base = v
		}
		out[e] = base
	}
	return out
}

func pairSet(pairs []timeseries.Pair) map[timeseries.Pair]bool {
	out := make(map[timeseries.Pair]bool, len(pairs))
	for _, p := range pairs {
		out[p] = true
	}
	return out
}

func TestBuildBasics(t *testing.T) {
	d, rel := testDataset(t, 1, 15, 80)
	idx, err := Build(d, rel, Options{})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	st := idx.Stats()
	if st.Pivots != rel.Stats.NumPivots {
		t.Fatalf("pivots = %d, want %d", st.Pivots, rel.Stats.NumPivots)
	}
	if st.SequenceNodes != len(rel.Relationships) {
		t.Fatalf("sequence nodes = %d, want %d", st.SequenceNodes, len(rel.Relationships))
	}
	if idx.NumPivots() != st.Pivots {
		t.Fatal("NumPivots mismatch")
	}
	if st.IndexedLMeasures != 3 || st.IndexedTMeasures != 2 ||
		st.IndexedDMeasures != len(SeparableDerivedMeasures()) {
		t.Fatalf("measure counts L=%d T=%d D=%d", st.IndexedLMeasures, st.IndexedTMeasures, st.IndexedDMeasures)
	}
	if !st.DerivedPruningOn {
		t.Fatal("pruning should be on by default")
	}
}

func TestBuildValidation(t *testing.T) {
	d, rel := testDataset(t, 2, 8, 40)
	if _, err := Build(d, nil, Options{}); err == nil {
		t.Fatal("nil relationships should error")
	}
	if _, err := Build(d, &symex.Result{}, Options{}); err == nil {
		t.Fatal("empty relationships should error")
	}
	if _, err := Build(d, rel, Options{PairMeasures: []stats.Measure{stats.Mean}}); err == nil {
		t.Fatal("L-measure as pair measure should error")
	}
	if _, err := Build(d, rel, Options{DerivedMeasures: []stats.Measure{stats.Covariance}}); err == nil {
		t.Fatal("T-measure as derived measure should error")
	}
	if _, err := Build(d, rel, Options{DerivedMeasures: []stats.Measure{stats.Jaccard}}); !errors.Is(err, ErrMeasureNotIndexed) {
		t.Fatalf("non-separable D-measure err = %v", err)
	}
	if _, err := Build(d, rel, Options{LocationMeasures: []stats.Measure{stats.Covariance}}); err == nil {
		t.Fatal("T-measure as location measure should error")
	}
	empty := &timeseries.DataMatrix{}
	if _, err := Build(empty, rel, Options{}); err == nil {
		t.Fatal("empty data matrix should error")
	}
}

func TestPairThresholdMatchesAffineEstimates(t *testing.T) {
	d, rel := testDataset(t, 3, 16, 90)
	idx, err := Build(d, rel, Options{})
	if err != nil {
		t.Fatal(err)
	}

	for _, m := range []stats.Measure{
		stats.Covariance, stats.DotProduct, stats.Correlation, stats.Cosine,
		stats.EuclideanDistance, stats.MeanSquaredDifference, stats.AngularDistance,
	} {
		estimates := affineEstimates(t, d, rel, m)
		// Pick thresholds spanning the value distribution.
		values := make([]float64, 0, len(estimates))
		for _, v := range estimates {
			values = append(values, v)
		}
		sort.Float64s(values)
		for _, q := range []float64{0.1, 0.5, 0.9} {
			tau := values[int(q*float64(len(values)-1))]

			want := map[timeseries.Pair]bool{}
			for e, v := range estimates {
				if v > tau {
					want[e] = true
				}
			}
			got, err := idx.PairInterval(m, interval.GreaterThan(tau))
			if err != nil {
				t.Fatalf("%v threshold: %v", m, err)
			}
			gotSet := pairSet(got)
			if len(gotSet) != len(got) {
				t.Fatalf("%v: duplicate pairs in result", m)
			}
			if !setsAlmostEqual(gotSet, want, estimates, tau) {
				t.Fatalf("%v Above %v: result mismatch (got %d want %d)", m, tau, len(gotSet), len(want))
			}

			// Below variant.
			wantBelow := map[timeseries.Pair]bool{}
			for e, v := range estimates {
				if v < tau {
					wantBelow[e] = true
				}
			}
			gotBelow, err := idx.PairInterval(m, interval.LessThan(tau))
			if err != nil {
				t.Fatal(err)
			}
			if !setsAlmostEqual(pairSet(gotBelow), wantBelow, estimates, tau) {
				t.Fatalf("%v Below %v: result mismatch", m, tau)
			}
		}
	}
}

// setsAlmostEqual compares two result sets, tolerating disagreement only for
// pairs whose estimate is within floating-point distance of the threshold.
func setsAlmostEqual(got, want map[timeseries.Pair]bool, estimates map[timeseries.Pair]float64, tau float64) bool {
	const tol = 1e-9
	for e := range got {
		if !want[e] && math.Abs(estimates[e]-tau) > tol*(1+math.Abs(tau)) {
			return false
		}
	}
	for e := range want {
		if !got[e] && math.Abs(estimates[e]-tau) > tol*(1+math.Abs(tau)) {
			return false
		}
	}
	return true
}

func TestPairRangeMatchesAffineEstimates(t *testing.T) {
	d, rel := testDataset(t, 4, 14, 70)
	idx, err := Build(d, rel, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []stats.Measure{stats.Covariance, stats.Correlation, stats.EuclideanDistance, stats.AngularDistance} {
		estimates := affineEstimates(t, d, rel, m)
		values := make([]float64, 0, len(estimates))
		for _, v := range estimates {
			values = append(values, v)
		}
		sort.Float64s(values)
		lo := values[len(values)/4]
		hi := values[3*len(values)/4]

		want := map[timeseries.Pair]bool{}
		for e, v := range estimates {
			if v >= lo && v <= hi {
				want[e] = true
			}
		}
		got, err := idx.PairInterval(m, interval.Between(lo, hi))
		if err != nil {
			t.Fatal(err)
		}
		gotSet := pairSet(got)
		ok := true
		for e := range gotSet {
			if !want[e] && math.Abs(estimates[e]-lo) > 1e-9 && math.Abs(estimates[e]-hi) > 1e-9 {
				ok = false
			}
		}
		for e := range want {
			if !gotSet[e] && math.Abs(estimates[e]-lo) > 1e-9 && math.Abs(estimates[e]-hi) > 1e-9 {
				ok = false
			}
		}
		if !ok {
			t.Fatalf("%v range [%v, %v] mismatch: got %d want %d", m, lo, hi, len(gotSet), len(want))
		}
	}
}

func TestDerivedPruningAblationIdenticalResults(t *testing.T) {
	d, rel := testDataset(t, 5, 15, 80)
	pruned, err := Build(d, rel, Options{})
	if err != nil {
		t.Fatal(err)
	}
	unpruned, err := Build(d, rel, Options{DisableDerivedPruning: true})
	if err != nil {
		t.Fatal(err)
	}
	// Every indexable D-measure — increasing ratios and decreasing distances
	// alike — must answer identically with and without the parameter-bound
	// pruning, at thresholds spanning its own value distribution.
	for _, m := range SeparableDerivedMeasures() {
		estimates := affineEstimates(t, d, rel, m)
		values := make([]float64, 0, len(estimates))
		for _, v := range estimates {
			values = append(values, v)
		}
		sort.Float64s(values)
		pick := func(q float64) float64 { return values[int(q*float64(len(values)-1))] }
		// The out-of-distribution probes (below every value / above every
		// value) exercise the Bounded short-circuits for clamped transforms.
		for _, tau := range []float64{pick(0.05), pick(0.3), pick(0.6), pick(0.95), pick(0) - 1, pick(1) + 1} {
			for _, op := range []ThresholdOp{Above, Below} {
				a, err := pruned.PairInterval(m, op.Interval(tau))
				if err != nil {
					t.Fatal(err)
				}
				b, err := unpruned.PairInterval(m, op.Interval(tau))
				if err != nil {
					t.Fatal(err)
				}
				if len(a) != len(b) {
					t.Fatalf("%v %v %v: pruned %d vs unpruned %d results", m, op, tau, len(a), len(b))
				}
				sa, sb := pairSet(a), pairSet(b)
				for e := range sa {
					if !sb[e] {
						t.Fatalf("%v %v %v: pair %v only in pruned result", m, op, tau, e)
					}
				}
			}
		}
		for _, r := range [][2]float64{{pick(0.1), pick(0.5)}, {pick(0.4), pick(0.9)}, {pick(0), pick(1)}} {
			a, err := pruned.PairInterval(m, interval.Between(r[0], r[1]))
			if err != nil {
				t.Fatal(err)
			}
			b, err := unpruned.PairInterval(m, interval.Between(r[0], r[1]))
			if err != nil {
				t.Fatal(err)
			}
			if len(a) != len(b) {
				t.Fatalf("%v range %v: pruned %d vs unpruned %d", m, r, len(a), len(b))
			}
		}
	}
}

func TestCorrelationThresholdAgainstGroundTruth(t *testing.T) {
	// On strongly clustered data, pairs within a group have correlation close
	// to 1 and cross-group pairs are clearly lower, so a threshold query at
	// 0.95 must recover (almost exactly) the within-group pairs.
	d, rel := testDataset(t, 6, 18, 150)
	idx, err := Build(d, rel, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := idx.PairInterval(stats.Correlation, interval.GreaterThan(0.95))
	if err != nil {
		t.Fatal(err)
	}
	gotSet := pairSet(got)

	truthCount := 0
	misses := 0
	for _, e := range d.AllPairs() {
		want, err := stats.PairMeasure(stats.Correlation, d, e)
		if err != nil {
			continue
		}
		if want > 0.95 {
			truthCount++
			if !gotSet[e] {
				misses++
			}
		}
	}
	if truthCount == 0 {
		t.Fatal("test data should contain highly correlated pairs")
	}
	if float64(misses) > 0.05*float64(truthCount) {
		t.Fatalf("missed %d of %d truly correlated pairs", misses, truthCount)
	}
}

func TestSeriesThresholdAndRange(t *testing.T) {
	d, rel := testDataset(t, 7, 12, 60)
	idx, err := Build(d, rel, Options{})
	if err != nil {
		t.Fatal(err)
	}
	means, err := stats.LocationVector(stats.Mean, d)
	if err != nil {
		t.Fatal(err)
	}
	sorted := append([]float64(nil), means...)
	sort.Float64s(sorted)
	tau := sorted[len(sorted)/2]

	got, err := idx.SeriesInterval(stats.Mean, interval.GreaterThan(tau))
	if err != nil {
		t.Fatal(err)
	}
	gotSet := map[timeseries.SeriesID]bool{}
	for _, id := range got {
		gotSet[id] = true
	}
	for id, v := range means {
		if v > tau+1e-9 && !gotSet[timeseries.SeriesID(id)] {
			t.Fatalf("series %d with mean %v missing from > %v result", id, v, tau)
		}
		if v < tau-1e-9 && gotSet[timeseries.SeriesID(id)] {
			t.Fatalf("series %d with mean %v wrongly in > %v result", id, v, tau)
		}
	}

	below, err := idx.SeriesInterval(stats.Mean, interval.LessThan(tau))
	if err != nil {
		t.Fatal(err)
	}
	if len(below)+len(got) > d.NumSeries() {
		t.Fatal("above and below results overlap")
	}

	lo, hi := sorted[2], sorted[len(sorted)-3]
	ranged, err := idx.SeriesInterval(stats.Mean, interval.Between(lo, hi))
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ranged {
		v := means[id]
		if v < lo-1e-9 || v > hi+1e-9 {
			t.Fatalf("series %d mean %v outside [%v, %v]", id, v, lo, hi)
		}
	}
}

func TestPairValue(t *testing.T) {
	d, rel := testDataset(t, 8, 10, 60)
	idx, err := Build(d, rel, Options{})
	if err != nil {
		t.Fatal(err)
	}
	estimates := affineEstimates(t, d, rel, stats.Covariance)
	for e, want := range estimates {
		got, err := idx.PairValue(stats.Covariance, e)
		if err != nil {
			t.Fatalf("PairValue(%v): %v", e, err)
		}
		if math.Abs(got-want) > 1e-7*(1+math.Abs(want)) {
			t.Fatalf("PairValue(%v) = %v, want %v", e, got, want)
		}
	}
	// Correlation values must be within [-1, 1].
	for e := range estimates {
		v, err := idx.PairValue(stats.Correlation, e)
		if err != nil {
			t.Fatal(err)
		}
		if v < -1 || v > 1 {
			t.Fatalf("correlation estimate %v out of range", v)
		}
	}
	if _, err := idx.PairValue(stats.Covariance, timeseries.Pair{U: 0, V: 99}); err == nil {
		t.Fatal("unknown pair should error")
	}
}

func TestQueryErrors(t *testing.T) {
	d, rel := testDataset(t, 9, 8, 40)
	idx, err := Build(d, rel, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := idx.PairInterval(stats.Mean, interval.GreaterThan(0)); !errors.Is(err, ErrBadQuery) {
		t.Fatalf("L-measure pair threshold err = %v", err)
	}
	if _, err := idx.PairInterval(stats.Jaccard, interval.GreaterThan(0)); !errors.Is(err, ErrMeasureNotIndexed) {
		t.Fatalf("Jaccard threshold err = %v", err)
	}
	if _, err := idx.PairInterval(stats.Covariance, interval.Between(2, 1)); !errors.Is(err, ErrBadQuery) {
		t.Fatalf("inverted range err = %v", err)
	}
	if _, err := idx.PairInterval(stats.Mean, interval.Between(0, 1)); !errors.Is(err, ErrBadQuery) {
		t.Fatalf("L-measure range err = %v", err)
	}
	if _, err := idx.PairInterval(stats.Jaccard, interval.Between(0, 1)); !errors.Is(err, ErrMeasureNotIndexed) {
		t.Fatalf("Jaccard range err = %v", err)
	}
	if _, err := idx.SeriesInterval(stats.Covariance, interval.GreaterThan(0)); !errors.Is(err, ErrMeasureNotIndexed) {
		t.Fatalf("series threshold on T-measure err = %v", err)
	}
	if _, err := idx.SeriesInterval(stats.Covariance, interval.Between(0, 1)); !errors.Is(err, ErrMeasureNotIndexed) {
		t.Fatalf("series range on T-measure err = %v", err)
	}
	if _, err := idx.SeriesInterval(stats.Mean, interval.Between(1, 0)); !errors.Is(err, ErrBadQuery) {
		t.Fatalf("series inverted range err = %v", err)
	}
	if _, err := idx.SeriesInterval(stats.Mean, interval.New(interval.Open(1), interval.Closed(1))); !errors.Is(err, ErrBadQuery) {
		t.Fatalf("empty point interval err = %v", err)
	}
}

// TestThresholdOpSugar pins the operator sugar: String renders the known
// operators and a stable "unknown(N)" form for anything else, Valid gates
// conversion, and Interval produces the strict half-bounded predicates.
func TestThresholdOpSugar(t *testing.T) {
	cases := []struct {
		op    ThresholdOp
		str   string
		valid bool
	}{
		{Above, ">", true},
		{Below, "<", true},
		{ThresholdOp(-1), "unknown(-1)", false},
		{ThresholdOp(2), "unknown(2)", false},
		{ThresholdOp(9), "unknown(9)", false},
	}
	for _, tc := range cases {
		if got := tc.op.String(); got != tc.str {
			t.Errorf("ThresholdOp(%d).String() = %q, want %q", int(tc.op), got, tc.str)
		}
		if got := tc.op.Valid(); got != tc.valid {
			t.Errorf("ThresholdOp(%d).Valid() = %v, want %v", int(tc.op), got, tc.valid)
		}
	}
	if iv := Above.Interval(0.5); !iv.Contains(0.6) || iv.Contains(0.5) || iv.Contains(0.4) {
		t.Errorf("Above.Interval(0.5) = %v is not (0.5, +inf)", iv)
	}
	if iv := Below.Interval(0.5); !iv.Contains(0.4) || iv.Contains(0.5) || iv.Contains(0.6) {
		t.Errorf("Below.Interval(0.5) = %v is not (-inf, 0.5)", iv)
	}
	// An unknown operator converts to the empty-matching degenerate interval
	// so downstream validation rejects it instead of running it as Above.
	if iv := ThresholdOp(9).Interval(0.5); !iv.Empty() {
		t.Errorf("unknown op Interval = %v, want empty", iv)
	}
}

func TestConstantSeriesDoesNotBreakIndex(t *testing.T) {
	series := [][]float64{
		{1, 2, 3, 4, 5, 6, 7, 8},
		{2, 4, 6, 8, 10, 12, 14, 16},
		{5, 5, 5, 5, 5, 5, 5, 5}, // constant: zero variance
		{8, 6, 4, 2, 0, -2, -4, -6},
	}
	d, err := timeseries.NewDataMatrix(series)
	if err != nil {
		t.Fatal(err)
	}
	rel, err := symex.Compute(d, symex.Options{
		Cluster:            cluster.Config{K: 2, MaxIterations: 10, Seed: 1, MinChanges: 0},
		CachePseudoInverse: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	idx, err := Build(d, rel, Options{})
	if err != nil {
		t.Fatalf("Build with constant series: %v", err)
	}
	// Queries must not blow up; pairs involving the constant series are
	// simply absent from correlation results.
	res, err := idx.PairInterval(stats.Correlation, interval.GreaterThan(0.5))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range res {
		if e.Contains(2) {
			t.Fatalf("pair %v with a constant series should not appear in correlation results", e)
		}
	}
	if _, err := idx.PairInterval(stats.Covariance, interval.GreaterThan(0)); err != nil {
		t.Fatal(err)
	}
}
