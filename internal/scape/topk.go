// Top-k (MEK) queries over the SCAPE index: the k pairs with the most extreme
// measure value, executed as a best-first traversal of the pivot nodes.
//
// Top-k is "adaptively discover the interval [v_k, best]": the per-node
// derived bounds that prune interval scans also order the pivot nodes by the
// best value they could possibly contain.  Nodes are visited best-first; each
// visited node is scanned only inside the running interval [v_k, ·] (v_k =
// the k-th best value found so far, tightening as the result heap fills), and
// the traversal stops as soon as the next node's optimistic bound cannot beat
// v_k — nodes beyond that point are never examined at all.
package scape

import (
	"fmt"
	"math"
	"sort"

	"affinity/internal/interval"
	"affinity/internal/measure"
	"affinity/internal/stats"
	"affinity/internal/timeseries"
)

// TopHeap keeps the k best (value, pair) entries offered to it under the
// deterministic total order shared by every top-k execution path: by value
// (descending for largest, ascending for smallest), ties broken by ascending
// canonical pair identity.  The worst retained entry sits at the heap root,
// so a full heap replaces it in O(log k) when a better entry arrives.
type TopHeap struct {
	k       int
	largest bool
	entries []topEntry // binary heap, worst retained entry first
}

type topEntry struct {
	pair  timeseries.Pair
	value float64
}

// NewTopHeap returns a heap retaining the k best entries (largest selects the
// direction: true keeps the greatest values, false the smallest).
func NewTopHeap(k int, largest bool) *TopHeap {
	return &TopHeap{k: k, largest: largest, entries: make([]topEntry, 0, k)}
}

// better reports whether a ranks strictly ahead of b in the result order.
func (h *TopHeap) better(a, b topEntry) bool {
	if a.value != b.value {
		if h.largest {
			return a.value > b.value
		}
		return a.value < b.value
	}
	return pairLess(a.pair, b.pair)
}

// Offer considers one entry; NaN values (undefined measures) never rank.
func (h *TopHeap) Offer(p timeseries.Pair, v float64) {
	if math.IsNaN(v) {
		return
	}
	e := topEntry{pair: p, value: v}
	if len(h.entries) < h.k {
		h.entries = append(h.entries, e)
		h.siftUp(len(h.entries) - 1)
		return
	}
	if !h.better(e, h.entries[0]) {
		return
	}
	h.entries[0] = e
	h.siftDown(0)
}

// Len returns the number of retained entries.
func (h *TopHeap) Len() int { return len(h.entries) }

// Full reports whether k entries are retained.
func (h *TopHeap) Full() bool { return len(h.entries) >= h.k }

// Threshold returns the running interval's moving endpoint: the value v_k of
// the worst retained entry once the heap is full.  An entry can still enter a
// full heap with value exactly v_k (winning the pair-id tie-break), so
// pruning against it must keep the closed endpoint.
func (h *TopHeap) Threshold() (float64, bool) {
	if !h.Full() {
		return 0, false
	}
	return h.entries[0].value, true
}

// Sorted returns the retained entries best-first.
func (h *TopHeap) Sorted() ([]timeseries.Pair, []float64) {
	es := append([]topEntry(nil), h.entries...)
	sort.Slice(es, func(i, j int) bool { return h.better(es[i], es[j]) })
	pairs := make([]timeseries.Pair, len(es))
	values := make([]float64, len(es))
	for i, e := range es {
		pairs[i] = e.pair
		values[i] = e.value
	}
	return pairs, values
}

// heap plumbing: entries[0] is the WORST retained entry, so the comparison is
// inverted (parents rank behind their children).
func (h *TopHeap) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !h.better(h.entries[p], h.entries[i]) {
			return
		}
		h.entries[p], h.entries[i] = h.entries[i], h.entries[p]
		i = p
	}
}

func (h *TopHeap) siftDown(i int) {
	n := len(h.entries)
	for {
		worst := i
		for c := 2*i + 1; c <= 2*i+2 && c < n; c++ {
			if h.better(h.entries[worst], h.entries[c]) {
				worst = c
			}
		}
		if worst == i {
			return
		}
		h.entries[i], h.entries[worst] = h.entries[worst], h.entries[i]
		i = worst
	}
}

// TopKCursor walks one index's pivot nodes in best-first bound order, one
// node per Step, against a caller-supplied result heap.  It is the resumable
// form of PairTopK: the caller can peek the next unscanned node's optimistic
// bound (NextBound) before deciding to scan it, which is what lets a
// multi-index coordinator interleave several indexes into one global top-k —
// each index is just a bound-ordered node source, and the shared heap's
// running [v_k, ·) interval prunes every source against the global k-th
// value.
type TopKCursor struct {
	idx      *Index
	sp       *measure.Spec
	largest  bool
	cands    []nodeCand
	next     int
	examined int
}

// nodeCand is one pivot node with its optimistic bound, in traversal order.
type nodeCand struct {
	order int
	node  *pivotNode
	bound float64
}

// NewTopKCursor prepares a best-first traversal for a pairwise measure: every
// pivot node's optimistic bound is evaluated and the nodes are sorted by
// (bound best-first, node order).  The cursor itself holds no result state —
// ranking lives in the TopHeap passed to Step — so several cursors can feed
// one heap.
func (idx *Index) NewTopKCursor(m stats.Measure, largest bool) (*TopKCursor, error) {
	sp, err := pairSpec(m)
	if err != nil {
		return nil, err
	}
	if sp.Derived() && !idx.derivedSet[m] {
		return nil, fmt.Errorf("%w: %v", ErrMeasureNotIndexed, m)
	}
	cands := make([]nodeCand, 0, len(idx.pivots))
	for i, node := range idx.pivots {
		bound, ok, err := idx.nodeTopBound(node, sp, largest)
		if err != nil {
			return nil, err
		}
		if !ok {
			continue
		}
		cands = append(cands, nodeCand{order: i, node: node, bound: bound})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].bound != cands[j].bound {
			if largest {
				return cands[i].bound > cands[j].bound
			}
			return cands[i].bound < cands[j].bound
		}
		return cands[i].order < cands[j].order
	})
	return &TopKCursor{idx: idx, sp: sp, largest: largest, cands: cands}, nil
}

// NextBound returns the optimistic bound of the next unscanned pivot node,
// or false when the cursor is exhausted.  The bound is the best value the
// node could possibly contribute; because nodes are bound-sorted it also
// bounds everything the cursor has left.
func (c *TopKCursor) NextBound() (float64, bool) {
	if c.next >= len(c.cands) {
		return 0, false
	}
	return c.cands[c.next].bound, true
}

// Step scans the next pivot node against the heap, restricted to the heap's
// running [v_k, ·) interval, and returns the number of sequence-node entries
// examined.  Callers decide when to stop by comparing NextBound against the
// heap's Threshold.
func (c *TopKCursor) Step(heap *TopHeap) (int, error) {
	if c.next >= len(c.cands) {
		return 0, nil
	}
	node := c.cands[c.next].node
	c.next++
	n, err := c.idx.scanNodeTopK(node, c.sp, c.largest, heap)
	if err != nil {
		return 0, err
	}
	c.examined += n
	return n, nil
}

// Examined returns the total number of sequence-node entries the cursor's
// Steps have evaluated.
func (c *TopKCursor) Examined() int { return c.examined }

// Exhausted reports whether every candidate node has been scanned.
func (c *TopKCursor) Exhausted() bool { return c.next >= len(c.cands) }

// BoundBeats reports whether an optimistic bound could still improve a full
// heap with k-th value vk: true unless the bound is strictly worse.  A bound
// equal to vk must still be scanned — an entry at exactly vk can win the
// pair-id tie-break.
func BoundBeats(bound, vk float64, largest bool) bool {
	if largest {
		return bound >= vk
	}
	return bound <= vk
}

// PairTopK answers a top-k (MEK) query over a pairwise measure from the
// index: the k pairs with the greatest (largest) or smallest measure value as
// represented by the index, best first with ties broken by pair identity.
// It returns the aligned values and the number of sequence-node entries
// examined — the work metric the pruning saves against a full sweep.
func (idx *Index) PairTopK(m stats.Measure, k int, largest bool) ([]timeseries.Pair, []float64, int, error) {
	if k <= 0 {
		return nil, nil, 0, fmt.Errorf("%w: top-k needs k >= 1, got %d", ErrBadQuery, k)
	}
	cur, err := idx.NewTopKCursor(m, largest)
	if err != nil {
		return nil, nil, 0, err
	}
	heap := NewTopHeap(k, largest)
	for !cur.Exhausted() {
		// Pruning invariant: once the heap is full, a node whose optimistic
		// bound is strictly worse than v_k cannot contribute — and the list is
		// bound-sorted, so neither can any later node.
		bound, _ := cur.NextBound()
		if vk, full := heap.Threshold(); full && !BoundBeats(bound, vk, largest) {
			break
		}
		if _, err := cur.Step(heap); err != nil {
			return nil, nil, 0, err
		}
	}
	pairs, values := heap.Sorted()
	return pairs, values, cur.Examined(), nil
}

// runningInterval is the predicate "could still enter the heap": unbounded
// until the heap fills, then closed at v_k on the moving side.  The endpoint
// is padded outward by the scan epsilon so an entry whose value reconstructs
// to exactly v_k through a differently-rounded ξ window is still examined
// (the heap's exact comparison rejects anything genuinely worse).
func runningInterval(heap *TopHeap, largest bool) interval.Interval {
	vk, full := heap.Threshold()
	if !full {
		return interval.All()
	}
	if largest {
		return interval.AtLeast(padBound(vk, -1))
	}
	return interval.AtMost(padBound(vk, +1))
}

// scanNodeTopK offers every entry of one pivot node that could still enter
// the heap, restricting the scan to the running interval's ξ window, and
// returns the number of entries examined.
func (idx *Index) scanNodeTopK(node *pivotNode, sp *measure.Spec, largest bool, heap *TopHeap) (int, error) {
	iv := runningInterval(heap, largest)
	examined := 0
	if !sp.Derived() {
		pm := node.measures[sp.ID]
		if pm == nil {
			return 0, fmt.Errorf("%w: %v", ErrMeasureNotIndexed, sp.ID)
		}
		if pm.alphaNorm == 0 {
			if iv.Contains(0) {
				pm.tree.Ascend(func(_ float64, sn *sequenceNode) bool {
					examined++
					heap.Offer(sn.pair, 0)
					return true
				})
			}
			return examined, nil
		}
		ascendInterval(pm.tree, scaleInterval(iv, pm.alphaNorm), func(xi float64, sn *sequenceNode) bool {
			examined++
			heap.Offer(sn.pair, pm.alphaNorm*xi)
			return true
		})
		return examined, nil
	}

	db := idx.nodeBounds(node, sp)
	if db.pm == nil {
		return 0, fmt.Errorf("%w: base measure %v", ErrMeasureNotIndexed, sp.Base)
	}
	if node.pairs == 0 {
		return 0, nil
	}
	pred := compileDerivedPredicate(sp, iv)
	if pred.empty {
		return 0, nil
	}
	offer := func(xi float64, sn *sequenceNode) bool {
		examined++
		if v, ok := idx.derivedValue(db.pm, sn, sp, xi); ok {
			heap.Offer(sn.pair, v)
		}
		return true
	}
	if pred.evalAll || !db.canPrune {
		db.pm.tree.Ascend(offer)
		return examined, nil
	}
	// Unlike an interval scan there is no blind-accept region: the heap needs
	// every candidate's exact value to rank it, so the whole conservative
	// window is evaluated.
	w := db.window(sp, pred.eval, idx.numSamples)
	db.pm.tree.AscendRange(w.scanLo, w.scanHi, offer)
	return examined, nil
}

// SeriesTopK answers a top-k query over an L-measure: the k series with the
// greatest (largest) or smallest measure value in the global location tree,
// best first with ties broken by ascending series identity.
func (idx *Index) SeriesTopK(m stats.Measure, k int, largest bool) ([]timeseries.SeriesID, []float64, error) {
	if k <= 0 {
		return nil, nil, fmt.Errorf("%w: top-k needs k >= 1, got %d", ErrBadQuery, k)
	}
	tree, ok := idx.location[m]
	if !ok {
		return nil, nil, fmt.Errorf("%w: %v", ErrMeasureNotIndexed, m)
	}
	type entry struct {
		id    timeseries.SeriesID
		value float64
	}
	entries := make([]entry, 0, tree.Len())
	tree.Ascend(func(_ float64, e seriesEntry) bool {
		if !math.IsNaN(e.value) {
			entries = append(entries, entry{id: e.id, value: e.value})
		}
		return true
	})
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].value != entries[j].value {
			if largest {
				return entries[i].value > entries[j].value
			}
			return entries[i].value < entries[j].value
		}
		return entries[i].id < entries[j].id
	})
	if len(entries) > k {
		entries = entries[:k]
	}
	ids := make([]timeseries.SeriesID, len(entries))
	values := make([]float64, len(entries))
	for i, e := range entries {
		ids[i] = e.id
		values[i] = e.value
	}
	return ids, values, nil
}

// nodeTopBound returns the optimistic bound on the best value a pivot node
// can contain for the measure: exact tree extremes scaled by ‖α‖ for
// T-measures; for D-measures the transform evaluated at the corners of the
// [T_min, T_max] × [U^min, U^max] box (every registered transform is monotone
// in T and, for fixed T, monotone in U, so the box extrema sit at corners).
// Nodes whose parameter bounds cannot prune report an unbounded optimum and
// are simply scanned before the traversal can stop.
func (idx *Index) nodeTopBound(node *pivotNode, sp *measure.Spec, largest bool) (float64, bool, error) {
	pm := node.measures[sp.Base]
	if pm == nil {
		return 0, false, fmt.Errorf("%w: %v", ErrMeasureNotIndexed, sp.Base)
	}
	minXi, ok := pm.tree.MinKey()
	if !ok {
		return 0, false, nil
	}
	maxXi, _ := pm.tree.MaxKey()
	if !sp.Derived() {
		if pm.alphaNorm == 0 {
			return 0, true, nil
		}
		if largest {
			return pm.alphaNorm * maxXi, true, nil
		}
		return pm.alphaNorm * minXi, true, nil
	}
	db := idx.nodeBounds(node, sp)
	unbounded := math.Inf(1)
	if !largest {
		unbounded = math.Inf(-1)
	}
	if !db.canPrune {
		return unbounded, true, nil
	}
	bound := math.NaN()
	for _, t := range [2]float64{pm.alphaNorm * minXi, pm.alphaNorm * maxXi} {
		for _, u := range [2]float64{db.uMin, db.uMax} {
			v, err := sp.Value(t, u, idx.numSamples)
			if err != nil {
				return unbounded, true, nil
			}
			if math.IsNaN(bound) || (largest && v > bound) || (!largest && v < bound) {
				bound = v
			}
		}
	}
	if math.IsNaN(bound) {
		return unbounded, true, nil
	}
	// Padded outward: corner and per-entry evaluations round differently, and
	// an under-estimated bound would let the traversal stop before a node
	// holding a boundary entry.  The pad only delays the stop marginally.
	if largest {
		return padBound(bound, +1), true, nil
	}
	return padBound(bound, -1), true, nil
}
