package scape

import (
	"fmt"
	"sort"

	"affinity/internal/btree"
	"affinity/internal/par"
	"affinity/internal/stats"
	"affinity/internal/symex"
	"affinity/internal/timeseries"
)

// DefaultCrossover is the stale fraction above which Update falls back to a
// full Build.  Calibrated like the planner's cost model: deleting and
// re-inserting one stale entry costs two O(log k) tree descents with
// copy-on-write path copies (~2 node copies each), while a full rebuild pays
// a flat O(1) append per entry into bulk-loaded leaves.  The measured
// crossover on the stock dataset sits between 1/3 and 1/2 (see
// EXPERIMENTS.md); 0.35 keeps the incremental path strictly on the winning
// side.
const DefaultCrossover = 0.35

// UpdateOptions configures an incremental index update.
type UpdateOptions struct {
	// Parallelism fans the per-pivot delta application and rebuild work out
	// over worker goroutines, with the same deterministic gather ordering as
	// Build.  Zero or one runs sequentially.
	Parallelism int
	// Crossover is the stale fraction (stale pairs / total relationships)
	// above which Update abandons the delta path and performs a full Build.
	// Zero selects DefaultCrossover.
	Crossover float64
}

// UpdateStats reports what an Update call did, for observability and the
// streaming engine's StreamStats.
type UpdateStats struct {
	// StaleFraction is |stale| / |relationships| for the new epoch (1 when
	// the stale set was nil, i.e. everything had to be refit).
	StaleFraction float64
	// Crossover is the threshold the decision was made against.
	Crossover float64
	// FellBack reports that the stale fraction exceeded the crossover and the
	// index was rebuilt from scratch instead of delta-updated.
	FellBack bool
	// StoresShared counts pivot sequence stores carried over wholesale (no
	// stale pairs touched the pivot — zero work, full structural sharing).
	StoresShared int
	// StoresCloned counts pivot sequence stores delta-updated through a
	// copy-on-write clone.
	StoresCloned int
	// StoresRebuilt counts pivots built from scratch (pivots absent from the
	// previous index, e.g. revived by refit after full pruning).
	StoresRebuilt int
	// EntriesDeleted / EntriesInserted count the sequence-store mutations the
	// delta application performed.
	EntriesDeleted  int
	EntriesInserted int
	// ScratchGets/ScratchHits mirror the pooled per-pivot scratch usage of
	// the epoch (hits came from the pool, misses allocated).
	ScratchGets int
	ScratchHits int
}

// Update produces the index for a new epoch from the previous epoch's index,
// the re-fitted relationship set, and the set of pairs symex.Refit actually
// re-fitted.  Pivot sequence stores are cloned copy-on-write and only the
// stale pairs' entries are deleted/re-inserted; everything derived from the
// slid window (α vectors, scalar projections, parameter bounds, location
// estimates) is recomputed through the exact code path Build uses, so the
// result answers every query byte-identically to Build(d, rel, ...) on the
// same window.  The previous index is never mutated and stays fully
// queryable.
//
// A nil stale set means every relationship was refit (mirroring
// symex.Refit); together with stale fractions above the crossover threshold
// it falls back to a full Build.
func (prev *Index) Update(d *timeseries.DataMatrix, rel *symex.Result,
	stale map[timeseries.Pair]bool, opts UpdateOptions) (*Index, UpdateStats, error) {

	var us UpdateStats
	us.Crossover = opts.Crossover
	if us.Crossover <= 0 {
		us.Crossover = DefaultCrossover
	}
	if prev == nil {
		return nil, us, fmt.Errorf("scape: update needs a previous index")
	}
	if err := d.Validate(); err != nil {
		return nil, us, err
	}
	if rel == nil || len(rel.Relationships) == 0 {
		return nil, us, fmt.Errorf("scape: no affine relationships to index")
	}
	if d.NumSeries() != prev.numSeries {
		return nil, us, fmt.Errorf("scape: update window has %d series, index has %d",
			d.NumSeries(), prev.numSeries)
	}

	if stale == nil {
		us.StaleFraction = 1
	} else {
		us.StaleFraction = float64(len(stale)) / float64(len(rel.Relationships))
	}
	if us.StaleFraction > us.Crossover {
		us.FellBack = true
		bopts := prev.opts
		bopts.BuildParallelism = opts.Parallelism
		idx, err := Build(d, rel, bopts)
		if err != nil {
			return nil, us, err
		}
		us.ScratchGets = idx.stats.ScratchGets
		us.ScratchHits = idx.stats.ScratchHits
		return idx, us, nil
	}

	buildOpts := prev.opts
	buildOpts.BuildParallelism = opts.Parallelism
	idx := &Index{
		opts:         buildOpts,
		byPivot:      make(map[symex.Pivot]*pivotNode),
		location:     make(map[stats.Measure]*btree.Tree[seriesEntry]),
		pairMeasures: prev.pairMeasures,
		derivedSet:   prev.derivedSet,
		locationSet:  prev.locationSet,
		numSamples:   d.NumSamples(),
		numSeries:    prev.numSeries,
	}
	perSeries, err := computeSeriesStats(d, opts.Parallelism)
	if err != nil {
		return nil, us, err
	}
	idx.perSeries = perSeries
	centers, err := computeCenterMoments(rel)
	if err != nil {
		return nil, us, err
	}

	// Group the stale pairs by their (fixed) pivot assignment; each pivot's
	// delta is applied in canonical pair order for deterministic work.
	staleByPivot := make(map[symex.Pivot][]timeseries.Pair)
	if len(stale) > 0 {
		for _, a := range rel.AssignmentList() {
			if stale[a.Pair] {
				staleByPivot[a.Pivot] = append(staleByPivot[a.Pivot], a.Pair)
			}
		}
		for _, list := range staleByPivot {
			sort.Slice(list, func(i, j int) bool { return pairLess(list[i], list[j]) })
		}
	}

	pivotOrder := rel.SortedPivots()

	type updNode struct {
		node     *pivotNode
		deleted  int
		inserted int
		shared   bool
		cloned   bool
		rebuilt  bool
	}
	results, err := par.Gather(len(pivotOrder), opts.Parallelism, func(i int) (updNode, error) {
		pivot := pivotOrder[i]
		pairs := rel.Pivots[pivot]
		prevNode := prev.byPivot[pivot]
		if prevNode == nil {
			node, err := idx.buildPivotNode(d, rel, pivot, pairs, perSeries, centers)
			return updNode{node: node, rebuilt: true}, err
		}
		changes := staleByPivot[pivot]
		var un updNode
		var seq *btree.Tree[*sequenceNode]
		if len(changes) == 0 {
			// Nothing assigned to this pivot was refit: the store is shared
			// wholesale with the previous epoch.
			seq = prevNode.seq
			un.shared = true
		} else {
			seq = prevNode.seq.Clone()
			for _, p := range changes {
				code := pairCode(p, idx.numSeries)
				if seq.Delete(code, func(sn *sequenceNode) bool { return sn.pair == p }) {
					un.deleted++
				}
			}
			for _, p := range changes {
				r, ok := rel.Relationships[p]
				if !ok {
					// Refit pruned the pair; the deletion above removed it.
					continue
				}
				seq.Insert(pairCode(p, idx.numSeries), newSequenceNode(p, r))
				un.inserted++
			}
			un.cloned = true
		}
		if seq.Len() != len(pairs) {
			return un, fmt.Errorf("scape: incremental update diverged for pivot %v: store has %d pairs, relationships have %d",
				pivot, seq.Len(), len(pairs))
		}
		node, err := idx.finishPivotNode(d, rel, pivot, seq, perSeries, centers)
		un.node = node
		return un, err
	})
	if err != nil {
		return nil, us, err
	}

	for _, un := range results {
		idx.pivots = append(idx.pivots, un.node)
		idx.byPivot[un.node.pivot] = un.node
		idx.stats.TotalTreeInsertion += un.node.insertions
		idx.stats.ScratchGets++
		if un.node.scratchHit {
			idx.stats.ScratchHits++
		}
		us.EntriesDeleted += un.deleted
		us.EntriesInserted += un.inserted
		switch {
		case un.shared:
			us.StoresShared++
		case un.cloned:
			us.StoresCloned++
		case un.rebuilt:
			us.StoresRebuilt++
		}
	}

	// Location estimates change with the window every epoch; they are rebuilt
	// exactly as Build does.
	if len(idx.opts.LocationMeasures) > 0 {
		if err := idx.buildLocationTrees(d, rel); err != nil {
			return nil, us, err
		}
	}

	idx.stats.Pivots = len(idx.pivots)
	idx.stats.SequenceNodes = len(rel.Relationships)
	idx.stats.IndexedTMeasures = len(idx.pairMeasures)
	idx.stats.IndexedDMeasures = len(idx.derivedSet)
	idx.stats.IndexedLMeasures = len(idx.locationSet)
	idx.stats.DerivedPruningOn = !idx.opts.DisableDerivedPruning
	us.ScratchGets = idx.stats.ScratchGets
	us.ScratchHits = idx.stats.ScratchHits
	return idx, us, nil
}
