package affinity_test

// Golden parity suite: pins that every measure returns byte-identical results
// through the naive, affine and SCAPE methods, for Threshold/Range/Compute
// queries, issued both singly and in batches.  The fixture in
// testdata/golden_measures.json was captured before the declarative measure
// algebra refactor (internal/measure); any refactor of the measure plumbing
// must reproduce these float bit patterns exactly.
//
// Regenerate (only when deliberately changing numeric behaviour) with:
//
//	go test -run TestGoldenMeasureParity -update-golden .

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"testing"

	"affinity"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden_measures.json.gz from the current implementation")

// The fixture is stored gzip-compressed (it is a 41k-line JSON document);
// readGolden/writeGolden decompress and compress transparently, keyed on the
// .gz suffix, so the parity suite itself never changes shape.
const goldenPath = "testdata/golden_measures.json.gz"

func readGolden(path string) ([]byte, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if !strings.HasSuffix(path, ".gz") {
		return buf, nil
	}
	zr, err := gzip.NewReader(bytes.NewReader(buf))
	if err != nil {
		return nil, fmt.Errorf("decompress %s: %w", path, err)
	}
	defer zr.Close()
	return io.ReadAll(zr)
}

func writeGolden(path string, content []byte) error {
	if !strings.HasSuffix(path, ".gz") {
		return os.WriteFile(path, content, 0o644)
	}
	var out bytes.Buffer
	zw := gzip.NewWriter(&out)
	if _, err := zw.Write(content); err != nil {
		return err
	}
	if err := zw.Close(); err != nil {
		return err
	}
	return os.WriteFile(path, out.Bytes(), 0o644)
}

// goldenMeasures lists the measures that existed before the measure-algebra
// refactor; the fixture deliberately does not grow when new measures are
// registered (new measures get their own agreement tests instead).
func goldenMeasures() []affinity.Measure {
	return []affinity.Measure{
		affinity.Mean, affinity.Median, affinity.Mode,
		affinity.Covariance, affinity.DotProduct,
		affinity.Correlation, affinity.Cosine, affinity.Jaccard,
		affinity.Dice, affinity.HarmonicMean,
	}
}

// goldenCase is one recorded query result.  Floats are stored as Go hex
// literals ('x' format), which round-trip float64 bit patterns exactly.
type goldenCase struct {
	Key    string   `json:"key"`
	Series []int    `json:"series,omitempty"`
	Pairs  []string `json:"pairs,omitempty"`
	Values []string `json:"values,omitempty"`
	Err    string   `json:"err,omitempty"`
}

func hexFloat(v float64) string { return strconv.FormatFloat(v, 'x', -1, 64) }

func goldenEngine(t testing.TB) (*affinity.Engine, *affinity.Dataset) {
	t.Helper()
	data, err := affinity.GenerateSensorData(affinity.SensorDataConfig{
		NumSeries: 36, NumSamples: 96, NumGroups: 4, Seed: 20260728,
	})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	eng, err := affinity.New(data, affinity.Options{Clusters: 4, Seed: 7, Parallelism: 2})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return eng, data
}

// quantiles returns deterministic per-measure query bounds derived from the
// naive value distribution, so every recorded query has a non-trivial result
// at every measure's natural scale.
func quantiles(t testing.TB, eng *affinity.Engine, m affinity.Measure) (q25, q50, q75 float64) {
	t.Helper()
	var vals []float64
	if !m.Pairwise() {
		vs, err := eng.ComputeLocation(m, eng.Data().IDs(), affinity.Naive)
		if err != nil {
			t.Fatalf("%v location: %v", m, err)
		}
		vals = vs
	} else {
		matrix, err := eng.ComputePairwise(m, eng.Data().IDs(), affinity.Naive)
		if err != nil {
			t.Fatalf("%v pairwise: %v", m, err)
		}
		for i := range matrix {
			for j := i + 1; j < len(matrix[i]); j++ {
				if !math.IsNaN(matrix[i][j]) {
					vals = append(vals, matrix[i][j])
				}
			}
		}
	}
	sort.Float64s(vals)
	if len(vals) == 0 {
		t.Fatalf("%v: no finite naive values", m)
	}
	return vals[len(vals)/4], vals[len(vals)/2], vals[3*len(vals)/4]
}

func resultCase(key string, res affinity.Result, err error) goldenCase {
	c := goldenCase{Key: key}
	if err != nil {
		c.Err = err.Error()
		return c
	}
	for _, id := range res.Series {
		c.Series = append(c.Series, int(id))
	}
	for _, p := range res.Pairs {
		c.Pairs = append(c.Pairs, fmt.Sprintf("%d-%d", p.U, p.V))
	}
	return c
}

func floatsCase(key string, vals []float64, err error) goldenCase {
	c := goldenCase{Key: key}
	if err != nil {
		c.Err = err.Error()
		return c
	}
	for _, v := range vals {
		c.Values = append(c.Values, hexFloat(v))
	}
	return c
}

// collectGolden runs the full query grid and returns every recorded case.
func collectGolden(t testing.TB) []goldenCase {
	eng, data := goldenEngine(t)
	ids := data.IDs()
	sub := ids[:6]
	methods := []struct {
		name string
		m    affinity.Method
	}{{"naive", affinity.Naive}, {"affine", affinity.Affine}, {"index", affinity.Index}}

	var cases []goldenCase
	for _, m := range goldenMeasures() {
		q25, q50, q75 := quantiles(t, eng, m)
		cases = append(cases, floatsCase(fmt.Sprintf("%v/quantiles", m), []float64{q25, q50, q75}, nil))

		var tqs []affinity.ThresholdQuery
		var rqs []affinity.RangeQuery
		for _, method := range methods {
			// MET above/below and MER at the measure's own scale.
			resA, errA := eng.Threshold(m, q50, affinity.Above, method.m)
			cases = append(cases, resultCase(fmt.Sprintf("%v/%s/met-above", m, method.name), resA, errA))
			resB, errB := eng.Threshold(m, q50, affinity.Below, method.m)
			cases = append(cases, resultCase(fmt.Sprintf("%v/%s/met-below", m, method.name), resB, errB))
			resR, errR := eng.Range(m, q25, q75, method.m)
			cases = append(cases, resultCase(fmt.Sprintf("%v/%s/mer", m, method.name), resR, errR))
		}
		tqs = append(tqs,
			affinity.ThresholdQuery{Measure: m, Tau: q50, Op: affinity.Above},
			affinity.ThresholdQuery{Measure: m, Tau: q50, Op: affinity.Below})
		rqs = append(rqs, affinity.RangeQuery{Measure: m, Lo: q25, Hi: q75})

		// Batched MET/MER per sweep method plus the index where applicable.
		for _, method := range methods {
			bt, err := eng.ThresholdBatch(tqs, method.m)
			if err != nil {
				cases = append(cases, goldenCase{Key: fmt.Sprintf("%v/%s/met-batch", m, method.name), Err: err.Error()})
			} else {
				for i, res := range bt {
					cases = append(cases, resultCase(fmt.Sprintf("%v/%s/met-batch-%d", m, method.name, i), res, nil))
				}
			}
			br, err := eng.RangeBatch(rqs, method.m)
			if err != nil {
				cases = append(cases, goldenCase{Key: fmt.Sprintf("%v/%s/mer-batch", m, method.name), Err: err.Error()})
			} else {
				for i, res := range br {
					cases = append(cases, resultCase(fmt.Sprintf("%v/%s/mer-batch-%d", m, method.name, i), res, nil))
				}
			}
		}

		// MEC single + batch with the sweep methods.
		for _, method := range methods[:2] {
			if !m.Pairwise() {
				vals, err := eng.ComputeLocation(m, ids, method.m)
				cases = append(cases, floatsCase(fmt.Sprintf("%v/%s/mec", m, method.name), vals, err))
			} else {
				matrix, err := eng.ComputePairwise(m, sub, method.m)
				var flat []float64
				if err == nil {
					for _, row := range matrix {
						flat = append(flat, row...)
					}
				}
				cases = append(cases, floatsCase(fmt.Sprintf("%v/%s/mec", m, method.name), flat, err))
			}
			cq := []affinity.ComputeQuery{{Measure: m, IDs: sub}}
			bres, err := eng.ComputeBatch(cq, method.m)
			var flat []float64
			if err == nil {
				flat = append(flat, bres[0].Location...)
				for _, row := range bres[0].Pairwise {
					flat = append(flat, row...)
				}
			}
			cases = append(cases, floatsCase(fmt.Sprintf("%v/%s/mec-batch", m, method.name), flat, err))
		}
	}
	return cases
}

func TestGoldenMeasureParity(t *testing.T) {
	got := collectGolden(t)
	if *updateGolden {
		buf, err := json.MarshalIndent(got, "", " ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := writeGolden(goldenPath, append(buf, '\n')); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d cases to %s", len(got), goldenPath)
		return
	}
	buf, err := readGolden(goldenPath)
	if err != nil {
		t.Fatalf("read fixture (run with -update-golden to create): %v", err)
	}
	var want []goldenCase
	if err := json.Unmarshal(buf, &want); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("case count changed: got %d, fixture has %d", len(got), len(want))
	}
	for i := range want {
		g, w := got[i], want[i]
		if g.Key != w.Key {
			t.Fatalf("case %d: key %q, fixture %q", i, g.Key, w.Key)
		}
		if fmt.Sprintf("%v|%v|%v|%s", g.Series, g.Pairs, g.Values, g.Err) !=
			fmt.Sprintf("%v|%v|%v|%s", w.Series, w.Pairs, w.Values, w.Err) {
			t.Errorf("%s: result drifted from pre-refactor fixture\n got: %+v\nwant: %+v", g.Key, g, w)
		}
	}
}
