package affinity

import (
	"math"
	"testing"
)

// streamData generates a stock dataset and splits it into an initial window
// plus a stream of ticks.
func streamData(t testing.TB, n, window, streamLen int) (*Dataset, [][]float64) {
	t.Helper()
	full, err := GenerateStockData(StockDataConfig{
		NumSeries:  n,
		NumSamples: window + streamLen,
		Seed:       3,
	})
	if err != nil {
		t.Fatal(err)
	}
	ticks := make([][]float64, streamLen)
	for s := 0; s < streamLen; s++ {
		tick := make([]float64, n)
		for v := 0; v < n; v++ {
			series, err := full.Series(SeriesID(v))
			if err != nil {
				t.Fatal(err)
			}
			tick[v] = series[window+s]
		}
		ticks[s] = tick
	}
	initial, err := full.Window(0, window)
	if err != nil {
		t.Fatal(err)
	}
	return initial, ticks
}

// TestPublicStreaming drives the public Append/Advance API across several
// window slides and checks the engine keeps answering all three query types
// coherently on the slid window.
func TestPublicStreaming(t *testing.T) {
	const n, window, slide, rounds = 20, 120, 10, 3
	initial, ticks := streamData(t, n, window, slide*rounds)
	eng, err := New(initial, Options{Clusters: 5, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	ids := initial.IDs()

	for round := 0; round < rounds; round++ {
		for _, tick := range ticks[round*slide : (round+1)*slide] {
			if err := eng.Append(tick); err != nil {
				t.Fatal(err)
			}
		}
		if eng.PendingSamples() != slide {
			t.Fatalf("round %d: pending = %d", round, eng.PendingSamples())
		}
		info, err := eng.Advance()
		if err != nil {
			t.Fatal(err)
		}
		if info.Epoch != round+1 || info.Slide != slide {
			t.Fatalf("round %d: info = %+v", round, info)
		}
		if eng.Epoch() != round+1 {
			t.Fatalf("round %d: Epoch() = %d", round, eng.Epoch())
		}
		if eng.Data().NumSamples() != window || eng.Data().StartIndex() != (round+1)*slide {
			t.Fatalf("round %d: window m=%d start=%d",
				round, eng.Data().NumSamples(), eng.Data().StartIndex())
		}

		// The affine approximation must track the naive ground truth on the
		// current window.
		truth, err := eng.ComputePairwise(Correlation, ids, Naive)
		if err != nil {
			t.Fatal(err)
		}
		approx, err := eng.ComputePairwise(Correlation, ids, Affine)
		if err != nil {
			t.Fatal(err)
		}
		var worst float64
		for i := range truth {
			for j := range truth[i] {
				if math.IsNaN(truth[i][j]) || math.IsNaN(approx[i][j]) {
					continue
				}
				if d := math.Abs(truth[i][j] - approx[i][j]); d > worst {
					worst = d
				}
			}
		}
		if worst > 0.25 {
			t.Fatalf("round %d: worst correlation error %v", round, worst)
		}

		// Index and affine threshold answers agree after the epoch swap.
		idxRes, err := eng.Threshold(Correlation, 0.9, Above, Index)
		if err != nil {
			t.Fatal(err)
		}
		affRes, err := eng.Threshold(Correlation, 0.9, Above, Affine)
		if err != nil {
			t.Fatal(err)
		}
		if len(idxRes.Pairs) != len(affRes.Pairs) {
			t.Fatalf("round %d: index %d pairs, affine %d",
				round, len(idxRes.Pairs), len(affRes.Pairs))
		}
	}
}

// TestPublicStreamingAutoAdvance exercises StreamOptions.AutoAdvance through
// the facade.
func TestPublicStreamingAutoAdvance(t *testing.T) {
	const n, window = 12, 80
	initial, ticks := streamData(t, n, window, 6)
	eng, err := New(initial, Options{
		Clusters: 4,
		Seed:     2,
		Stream:   StreamOptions{AutoAdvance: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if err := eng.Append(ticks[i]); err != nil {
			t.Fatal(err)
		}
	}
	if eng.Epoch() != 2 || eng.PendingSamples() != 0 {
		t.Fatalf("epoch %d pending %d after 6 auto-advancing ticks",
			eng.Epoch(), eng.PendingSamples())
	}
}
